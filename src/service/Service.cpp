//===-- service/Service.cpp - Sharded execution front end -----------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "dispatch/EngineRegistry.h"
#include "forth/Forth.h"
#include "service/Channel.h"
#include "support/Assert.h"
#include "vm/Code.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace sc;
using namespace sc::service;

//===----------------------------------------------------------------------===//
// Internal structures
//===----------------------------------------------------------------------===//

/// One compiled program, shared by every job submitted with the same
/// source text. The System owns the Code and the proto machine (data
/// space as the compiler left it) that every job copies.
struct ServiceFrontEnd::Program {
  std::unique_ptr<forth::System> Sys;
  uint64_t Identity = 0; ///< Code content hash (free-list/rebuild key)
};

/// The service-side life of one (tenant, token): where the job lives,
/// what it would take to rebuild it, and — once finished — its final
/// Result frame. Records are never deleted (they ARE the idempotency
/// memory); the sched::Job underneath is recycled the moment the result
/// is harvested.
struct ServiceFrontEnd::JobRecord {
  std::string Tenant;
  uint64_t Token = 0;
  unsigned Shard = 0;
  sched::Job *J = nullptr; ///< null once harvested
  Program *Prog = nullptr;
  uint8_t Engine = 0;
  sched::JobSpec Spec; ///< for re-creation after a shard kill
  bool CancelRequested = false;
  bool DoneHarvested = false;
  Frame Result; ///< valid once DoneHarvested
};

//===----------------------------------------------------------------------===//
// Construction / teardown
//===----------------------------------------------------------------------===//

ServiceFrontEnd::ServiceFrontEnd(ServiceConfig Config) : Cfg(Config) {
  SC_ASSERT(Cfg.Shards > 0, "a service needs at least one shard");
  SC_ASSERT(Cfg.CheckpointEverySlices > 0,
            "the service's kill/recover contract needs checkpoints");
  SC_ASSERT(Cfg.TenantQueueCapacity >= Cfg.MaxInFlightPerTenant,
            "shard rebuild must be able to re-admit every live job: "
            "TenantQueueCapacity >= MaxInFlightPerTenant");
  if (!Cfg.Cache)
    Cfg.Cache = &prepare::globalPrepareCache();
  Shards.resize(Cfg.Shards);
  ShardDown.assign(Cfg.Shards, 0);
  ShardLive.assign(Cfg.Shards, 0);
  ShardTenants.resize(Cfg.Shards);
  FreeJobs.resize(Cfg.Shards);
  LiveRecs.resize(Cfg.Shards);
  for (unsigned S = 0; S < Cfg.Shards; ++S)
    buildShard(S);
}

ServiceFrontEnd::~ServiceFrontEnd() { shutdown(); }

void ServiceFrontEnd::buildShard(unsigned S) {
  sched::SchedConfig SC;
  SC.Workers = Cfg.WorkersPerShard;
  SC.SliceSteps = Cfg.SliceSteps;
  SC.Policy = Cfg.Policy;
  SC.Cache = Cfg.Cache;
  SC.CheckpointEverySlices = Cfg.CheckpointEverySlices;
  SC.CrashEveryDispatches = Cfg.CrashEveryDispatches;
  SC.CrashOneIn = Cfg.CrashOneIn;
  // Decorrelate the shards' doom draws so one seed does not crash every
  // shard in lockstep.
  SC.CrashSeed = Cfg.CrashSeed + 0x9e3779b97f4a7c15ULL * S;
  Shards[S] = std::make_unique<sched::SessionScheduler>(SC);
  ShardTenants[S].clear();
  FreeJobs[S].clear();
}

unsigned ServiceFrontEnd::shardOf(const std::string &Tenant) const {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (const char C : Tenant) {
    H ^= static_cast<uint8_t>(C);
    H *= 0x100000001b3ULL;
  }
  return static_cast<unsigned>(H % Cfg.Shards);
}

sched::TenantId ServiceFrontEnd::shardTenant(unsigned S,
                                             const std::string &Tenant) {
  auto It = ShardTenants[S].find(Tenant);
  if (It != ShardTenants[S].end())
    return It->second;
  sched::TenantConfig TC;
  TC.QueueCapacity = Cfg.TenantQueueCapacity;
  TC.OnFull = sched::Backpressure::Reject;
  const sched::TenantId T = Shards[S]->addTenant(Tenant, TC);
  ShardTenants[S].emplace(Tenant, T);
  return T;
}

//===----------------------------------------------------------------------===//
// Frame builders
//===----------------------------------------------------------------------===//

Frame ServiceFrontEnd::errorFrame(const Frame &Req, ServiceError E,
                                  std::string Detail) {
  ++Stats.Errors;
  Frame F;
  F.Type = FrameType::Error;
  F.RequestId = Req.RequestId;
  F.Err = E;
  F.Detail = std::move(Detail);
  return F;
}

Frame ServiceFrontEnd::rejectFrame(const Frame &Req, RejectCode Code) {
  switch (Code) {
  case RejectCode::TenantBusy:
    ++Stats.RejectedBusy;
    break;
  case RejectCode::ShardSaturated:
    ++Stats.RejectedSaturated;
    break;
  case RejectCode::ShardDegraded:
    ++Stats.RejectedDegraded;
    break;
  case RejectCode::AdmissionClosed:
    ++Stats.RejectedClosed;
    break;
  }
  Frame F;
  F.Type = FrameType::Reject;
  F.RequestId = Req.RequestId;
  F.Code = Code;
  F.RetryAfterNs = Cfg.RetryAfterNs;
  return F;
}

Frame ServiceFrontEnd::resultFrame(const Frame &Req,
                                   const JobRecord &R) const {
  Frame F = R.Result;
  F.RequestId = Req.RequestId;
  return F;
}

//===----------------------------------------------------------------------===//
// Harvest / job pool
//===----------------------------------------------------------------------===//

void ServiceFrontEnd::sweepShard(unsigned S) {
  SC_ASSERT(!ShardDown[S], "sweep of a dying shard");
  std::vector<JobRecord *> &Recs = LiveRecs[S];
  for (size_t I = 0; I < Recs.size();) {
    JobRecord *R = Recs[I];
    if (R->J->state() != sched::JobState::Done) {
      ++I;
      continue;
    }
    const session::SessionResult &A = R->J->result();
    R->Result.Type = FrameType::Result;
    R->Result.Token = R->Token;
    R->Result.Stop = static_cast<uint8_t>(A.Stop);
    R->Result.Status = static_cast<uint8_t>(A.Outcome.Status);
    R->Result.Steps = A.Outcome.Steps;
    R->Result.Slices = A.Slices;
    R->Result.Output = R->J->machine().Out;
    R->DoneHarvested = true;
    FreeJobs[S][FreeKey{R->Prog->Identity, R->Engine,
                        ShardTenants[S].at(R->Tenant)}]
        .push_back(R->J);
    R->J = nullptr;
    SC_ASSERT(InFlight[R->Tenant] > 0, "in-flight underflow");
    --InFlight[R->Tenant];
    SC_ASSERT(ShardLive[S] > 0, "shard-live underflow");
    --ShardLive[S];
    ++Stats.Completed;
    Recs[I] = Recs.back();
    Recs.pop_back();
  }
}

ServiceFrontEnd::Program *
ServiceFrontEnd::getProgram(const std::string &Source, std::string &Err) {
  auto It = Programs.find(Source);
  if (It != Programs.end())
    return It->second.get();
  auto Sys = std::make_unique<forth::System>();
  if (!Sys->load(Source)) {
    Err = Sys->error();
    return nullptr;
  }
  auto P = std::make_unique<Program>();
  P->Identity = Sys->Prog.identity();
  P->Sys = std::move(Sys);
  Program *Raw = P.get();
  Programs.emplace(Source, std::move(P));
  return Raw;
}

sched::Job *ServiceFrontEnd::obtainJob(unsigned S, Program &P,
                                       engine::EngineId E, sched::TenantId T,
                                       sched::JobSpec Spec) {
  auto It = FreeJobs[S].find(
      FreeKey{P.Identity, static_cast<uint8_t>(E), T});
  if (It != FreeJobs[S].end() && !It->second.empty()) {
    sched::Job *J = It->second.back();
    It->second.pop_back();
    Shards[S]->recycle(J, P.Sys->Machine, Spec);
    ++Stats.JobsRecycled;
    return J;
  }
  return Shards[S]->createJob(T, P.Sys->Prog, E, P.Sys->Machine, Spec);
}

//===----------------------------------------------------------------------===//
// Request handlers
//===----------------------------------------------------------------------===//

Frame ServiceFrontEnd::handle(const Frame &Req) {
  std::unique_lock<std::mutex> Lock(Mu);
  switch (Req.Type) {
  case FrameType::SubmitReq:
    return submitReq(Req);
  case FrameType::PollReq:
    return pollReq(Req);
  case FrameType::CancelReq:
    return cancelReq(Req);
  case FrameType::StatsReq:
    return statsReq(Req);
  default:
    // A well-formed frame of a response type is not a request; answer
    // with a typed refusal instead of dropping the connection.
    return errorFrame(Req, ServiceError::BadFrameType,
                      std::string("not a request: ") +
                          frameTypeName(Req.Type));
  }
}

Frame ServiceFrontEnd::submitReq(const Frame &Req) {
  const RecordKey Key{Req.Tenant, Req.Token};
  const unsigned S = shardOf(Req.Tenant);

  // Idempotency first: a duplicate attaches to the existing job no
  // matter what state admission is in — a retry of an already-admitted
  // job must never bounce off a cap its first copy already holds.
  if (!ShardDown[S] && !ShuttingDown)
    sweepShard(S);
  auto RecIt = Records.find(Key);
  if (RecIt != Records.end()) {
    JobRecord &R = *RecIt->second;
    ++Stats.Duplicates;
    if (R.DoneHarvested)
      return resultFrame(Req, R);
    Frame F;
    F.Type = FrameType::SubmitAck;
    F.RequestId = Req.RequestId;
    F.Token = Req.Token;
    F.Duplicate = 1;
    F.Shard = R.Shard;
    return F;
  }

  if (ShuttingDown)
    return rejectFrame(Req, RejectCode::AdmissionClosed);
  if (ShardDown[S])
    return rejectFrame(Req, RejectCode::ShardDegraded);
  if (InFlight[Req.Tenant] >= Cfg.MaxInFlightPerTenant)
    return rejectFrame(Req, RejectCode::TenantBusy);
  if (ShardLive[S] >= Cfg.ShardHighWater)
    return rejectFrame(Req, RejectCode::ShardDegraded);

  if (Req.Engine >= engine::NumEngineIds)
    return errorFrame(Req, ServiceError::BadEngine,
                      "engine id out of range");
  const auto E = static_cast<engine::EngineId>(Req.Engine);
  if (!engine::engineInfo(E).Caps.Reentrant)
    return errorFrame(Req, ServiceError::BadEngine,
                      std::string(engine::engineName(E)) +
                          " is not reentrant; a sharded service cannot "
                          "serialize it process-wide");

  std::string CompileErr;
  Program *P = getProgram(Req.Source, CompileErr);
  if (!P)
    return errorFrame(Req, ServiceError::CompileFailed, CompileErr);
  const vm::Word *W = P->Sys->Prog.findWord(Req.Word);
  if (!W)
    return errorFrame(Req, ServiceError::BadWord,
                      "no such word: " + Req.Word);

  sched::JobSpec Spec;
  Spec.Entry = W->Entry;
  Spec.FuelSteps = Req.FuelSteps;
  Spec.Deadline = std::chrono::nanoseconds(Req.DeadlineNs);
  const sched::TenantId T = shardTenant(S, Req.Tenant);
  sched::Job *J = obtainJob(S, *P, E, T, Spec);

  const sched::SubmitResult SR = Shards[S]->submit(J);
  if (SR != sched::SubmitResult::Admitted) {
    // The job never ran: park it for the next submission of this
    // (program, engine, tenant) instead of leaking it.
    FreeJobs[S][FreeKey{P->Identity, Req.Engine, T}].push_back(J);
    return rejectFrame(Req, SR == sched::SubmitResult::Rejected
                                ? RejectCode::ShardSaturated
                                : RejectCode::AdmissionClosed);
  }

  auto Rec = std::make_unique<JobRecord>();
  Rec->Tenant = Req.Tenant;
  Rec->Token = Req.Token;
  Rec->Shard = S;
  Rec->J = J;
  Rec->Prog = P;
  Rec->Engine = Req.Engine;
  Rec->Spec = Spec;
  LiveRecs[S].push_back(Rec.get());
  Records.emplace(Key, std::move(Rec));
  ++InFlight[Req.Tenant];
  ++ShardLive[S];
  ++Stats.Submitted;

  Frame F;
  F.Type = FrameType::SubmitAck;
  F.RequestId = Req.RequestId;
  F.Token = Req.Token;
  F.Duplicate = 0;
  F.Shard = S;
  return F;
}

Frame ServiceFrontEnd::pollReq(const Frame &Req) {
  ++Stats.Polls;
  auto It = Records.find(RecordKey{Req.Tenant, Req.Token});
  if (It == Records.end())
    return errorFrame(Req, ServiceError::UnknownJob,
                      "no job for this tenant/token");
  JobRecord &R = *It->second;
  if (!R.DoneHarvested && !ShardDown[R.Shard])
    sweepShard(R.Shard);
  if (R.DoneHarvested)
    return resultFrame(Req, R);
  Frame F;
  F.Type = FrameType::Pending;
  F.RequestId = Req.RequestId;
  F.Token = Req.Token;
  // While the shard is being rebuilt the job is logically queued.
  F.JobStateVal = R.J && !ShardDown[R.Shard]
                      ? static_cast<uint8_t>(R.J->state())
                      : static_cast<uint8_t>(sched::JobState::Queued);
  return F;
}

Frame ServiceFrontEnd::cancelReq(const Frame &Req) {
  ++Stats.Cancels;
  auto It = Records.find(RecordKey{Req.Tenant, Req.Token});
  if (It == Records.end())
    return errorFrame(Req, ServiceError::UnknownJob,
                      "no job for this tenant/token");
  JobRecord &R = *It->second;
  if (R.DoneHarvested)
    return resultFrame(Req, R); // finished first; cancellation lost the race
  R.CancelRequested = true;
  if (R.J && !ShardDown[R.Shard])
    R.J->cancel();
  // else: the shard is mid-rebuild; killShard re-applies the flag to the
  // revived job.
  Frame F;
  F.Type = FrameType::Pending;
  F.RequestId = Req.RequestId;
  F.Token = Req.Token;
  F.JobStateVal = static_cast<uint8_t>(sched::JobState::Queued);
  return F;
}

Frame ServiceFrontEnd::statsReq(const Frame &Req) {
  Frame F;
  F.Type = FrameType::StatsReply;
  F.RequestId = Req.RequestId;
  metrics::Json O = metrics::Json::object();
  metrics::Json Svc = metrics::Json::object();
  Svc.set("submitted", metrics::Json::number(Stats.Submitted));
  Svc.set("duplicates", metrics::Json::number(Stats.Duplicates));
  Svc.set("completed", metrics::Json::number(Stats.Completed));
  Svc.set("polls", metrics::Json::number(Stats.Polls));
  Svc.set("cancels", metrics::Json::number(Stats.Cancels));
  Svc.set("rejected_busy", metrics::Json::number(Stats.RejectedBusy));
  Svc.set("rejected_saturated",
          metrics::Json::number(Stats.RejectedSaturated));
  Svc.set("rejected_degraded",
          metrics::Json::number(Stats.RejectedDegraded));
  Svc.set("rejected_closed", metrics::Json::number(Stats.RejectedClosed));
  Svc.set("errors", metrics::Json::number(Stats.Errors));
  Svc.set("shard_kills", metrics::Json::number(Stats.ShardKills));
  Svc.set("jobs_recovered", metrics::Json::number(Stats.JobsRecovered));
  Svc.set("jobs_recycled", metrics::Json::number(Stats.JobsRecycled));
  O.set("service", std::move(Svc));
  metrics::Json Sh = metrics::Json::array();
  for (unsigned S = 0; S < Cfg.Shards; ++S) {
    metrics::Json J = sched::snapshotToJson(Shards[S]->snapshot());
    J.set("down", metrics::Json::number(static_cast<uint64_t>(ShardDown[S])));
    J.set("live_jobs", metrics::Json::number(ShardLive[S]));
    Sh.push(std::move(J));
  }
  O.set("shards", std::move(Sh));
  F.StatsJson = O.dump();
  return F;
}

ServiceStats ServiceFrontEnd::statsSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

metrics::Json ServiceFrontEnd::statsJson() const {
  // statsReq builds the document; reuse it through the public path.
  Frame Req;
  Req.Type = FrameType::StatsReq;
  Frame F = const_cast<ServiceFrontEnd *>(this)->handle(Req);
  metrics::Json O;
  const bool Ok = metrics::Json::parse(F.StatsJson, O, nullptr);
  SC_ASSERT(Ok, "the service's own stats document must parse");
  return O;
}

//===----------------------------------------------------------------------===//
// Chaos: shard kill + rebuild
//===----------------------------------------------------------------------===//

void ServiceFrontEnd::killShard(unsigned S) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (ShuttingDown || S >= Shards.size() || ShardDown[S])
      return;
    ShardDown[S] = 1;
    ++Stats.ShardKills;
    // Kill: abandon every in-flight dispatch at its next slice boundary.
    // Progress past the last durable checkpoint is lost — that is the
    // point — and cancel is how a cooperative scheduler stops quickly.
    for (JobRecord *R : LiveRecs[S])
      R->J->cancel();
  }

  // Wait out the victims without holding the service lock: the other
  // shards keep serving while this one dies.
  Shards[S]->drain();

  std::lock_guard<std::mutex> Lock(Mu);
  struct Revive {
    JobRecord *R;
    std::vector<uint8_t> Ckpt; ///< empty: restart from the beginning
  };
  std::vector<Revive> Revived;
  for (JobRecord *R : LiveRecs[S]) {
    const session::SessionResult &A = R->J->result();
    if (A.Stop != session::StopKind::Cancelled || R->CancelRequested) {
      // Finished (or was genuinely cancelled by its client) before the
      // kill took effect: the result is real, keep it. The job itself
      // dies with the shard — no free-listing into a dead scheduler.
      R->Result.Type = FrameType::Result;
      R->Result.Token = R->Token;
      R->Result.Stop = static_cast<uint8_t>(A.Stop);
      R->Result.Status = static_cast<uint8_t>(A.Outcome.Status);
      R->Result.Steps = A.Outcome.Steps;
      R->Result.Slices = A.Slices;
      R->Result.Output = R->J->machine().Out;
      R->DoneHarvested = true;
      R->J = nullptr;
      --InFlight[R->Tenant];
      --ShardLive[S];
      ++Stats.Completed;
      continue;
    }
    Revived.push_back(Revive{R, R->J->session().lastCheckpoint()});
    R->J = nullptr;
  }
  LiveRecs[S].clear();

  // Restart: a brand-new scheduler (workers, queues, counters all
  // fresh), then every surviving job re-created from its checkpoint.
  buildShard(S);
  for (Revive &V : Revived) {
    JobRecord *R = V.R;
    const sched::TenantId T = shardTenant(S, R->Tenant);
    Program &P = *R->Prog;
    sched::Job *J = Shards[S]->createJob(
        T, P.Sys->Prog, static_cast<engine::EngineId>(R->Engine),
        P.Sys->Machine, R->Spec);
    if (!V.Ckpt.empty()) {
      const snapshot::SnapshotError E =
          Shards[S]->adoptCheckpoint(J, V.Ckpt.data(), V.Ckpt.size());
      SC_ASSERT(E == snapshot::SnapshotError::None,
                "a checkpoint the service harvested failed to restore");
    }
    const sched::SubmitResult SR = Shards[S]->submit(J);
    SC_ASSERT(SR == sched::SubmitResult::Admitted,
              "rebuild re-admission cannot bounce: queue capacity covers "
              "the in-flight cap");
    if (R->CancelRequested)
      J->cancel();
    R->J = J;
    LiveRecs[S].push_back(R);
    ++Stats.JobsRecovered;
  }
  ShardDown[S] = 0;
}

void ServiceFrontEnd::shutdown() {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    if (ShuttingDown)
      return;
    // Let any in-progress killShard finish rebuilding before the gates
    // close; its revived jobs are then drained like any others.
    while (std::find(ShardDown.begin(), ShardDown.end(), 1) !=
           ShardDown.end()) {
      Lock.unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      Lock.lock();
    }
    ShuttingDown = true;
    for (unsigned S = 0; S < Cfg.Shards; ++S)
      for (JobRecord *R : LiveRecs[S])
        R->J->cancel();
  }
  for (unsigned S = 0; S < Cfg.Shards; ++S)
    Shards[S]->shutdown();
  std::lock_guard<std::mutex> Lock(Mu);
  // Harvest the stragglers so post-shutdown polls still serve results.
  for (unsigned S = 0; S < Cfg.Shards; ++S)
    sweepShard(S);
}

//===----------------------------------------------------------------------===//
// Connection loop
//===----------------------------------------------------------------------===//

void sc::service::serveChannel(ServiceFrontEnd &FE, Channel &Ch) {
  FrameBuffer FB;
  std::vector<uint8_t> Raw;
  uint8_t Buf[16384];
  for (;;) {
    ServiceError StreamErr;
    while (FB.next(Raw, StreamErr)) {
      Frame Req;
      Frame Resp;
      const ServiceError DE = decodeFrame(Raw, Req);
      if (DE != ServiceError::None) {
        // A sealed-length frame that fails validation: the request never
        // happened; tell the client with a typed Error naming whatever
        // request id survived the corruption.
        Resp.Type = FrameType::Error;
        Resp.RequestId = peekRequestId(Raw.data(), Raw.size());
        Resp.Err = DE;
        Resp.Detail = serviceErrorName(DE);
      } else {
        Resp = FE.handle(Req);
      }
      if (!Ch.send(encodeFrame(Resp)))
        return;
    }
    if (StreamErr != ServiceError::None)
      return; // poisoned prefix: nothing to resync on, drop the link
    const int64_t N = Ch.recv(Buf, sizeof(Buf), 0);
    if (N <= 0)
      return;
    FB.feed(Buf, static_cast<size_t>(N));
  }
}
