//===-- service/Service.h - Sharded execution front end --------*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The networked execution service's brain: ServiceFrontEnd maps the
/// sc-wire request frames onto a fleet of SessionScheduler shards (one
/// per core in production; configurable here) with tenant→shard
/// hashing. The transport layer (Server.h) is a thin loop around
/// handle(); everything stateful lives here, so the in-process tests
/// and the TCP server exercise identical logic.
///
/// Contracts:
///
///   - Exactly-once: Submit is idempotent on (tenant, token). A
///     duplicate — a client retry after a lost ack, or a transport-
///     duplicated frame — attaches to the existing job (SubmitAck with
///     Duplicate=1, or the final Result if it already finished) and
///     never creates a second execution.
///   - Overload protection: admission is refused *explicitly*, never
///     queued unboundedly. Per-tenant in-flight caps (TenantBusy),
///     per-tenant bounded scheduler queues (ShardSaturated), a
///     per-shard live-job high water (ShardDegraded), and a
///     drain/shutdown gate (AdmissionClosed) each produce a Reject
///     frame with a retry-after hint. Shedding is shard-by-shard by
///     construction: one saturated or down shard rejects only the
///     tenants hashed onto it.
///   - Crash recovery: killShard() kills a shard mid-job — in-flight
///     dispatch progress beyond the last durable checkpoint is lost —
///     and rebuilds it from scratch, re-creating every live job from
///     its harvested sc-snap checkpoint (SessionScheduler::
///     adoptCheckpoint). Re-executed slices are reported exactly once,
///     so results after a kill are field-for-field what an unkilled run
///     produces. Scheduler-internal crash injection (CrashOneIn)
///     composes with this.
///   - Bounded memory: finished jobs are recycled into per-shard free
///     lists keyed on (program identity, engine); an unbounded job
///     stream runs on a bounded job pool whose size tracks peak
///     concurrency, not total jobs served.
///
/// Non-reentrant engine flavors (call threading's static VM registers)
/// are refused with ServiceError::BadEngine: their dispatches would
/// need process-wide serialization across shards, which is exactly the
/// scalability collapse a sharded service exists to avoid.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SERVICE_SERVICE_H
#define SC_SERVICE_SERVICE_H

#include "metrics/Json.h"
#include "sched/SessionScheduler.h"
#include "service/Protocol.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sc::forth {
class System;
} // namespace sc::forth

namespace sc::service {

class Channel;

struct ServiceConfig {
  /// Scheduler shards. Production sizing is one per core; tests pin
  /// small counts for determinism.
  unsigned Shards = 2;
  unsigned WorkersPerShard = 1;
  uint64_t SliceSteps = 4096;
  /// Durable checkpoint cadence per job (slices). Must be nonzero for
  /// killShard()/crash injection to have anything to recover from.
  uint64_t CheckpointEverySlices = 4;
  /// Bounded admission queue per tenant per shard (Backpressure::
  /// Reject). Must be >= MaxInFlightPerTenant so a shard rebuild can
  /// always re-admit every live job it harvested.
  size_t TenantQueueCapacity = 64;
  /// Live (submitted, unfinished) jobs one tenant may hold at once
  /// before Submit gets Reject{TenantBusy}.
  uint64_t MaxInFlightPerTenant = 32;
  /// Live jobs one shard may hold across all its tenants before Submit
  /// gets Reject{ShardDegraded} — the graceful-degradation valve that
  /// protects running jobs instead of collapsing the shard.
  uint64_t ShardHighWater = 256;
  /// Backoff hint carried in every Reject frame.
  uint64_t RetryAfterNs = 2'000'000;
  sched::SchedPolicy Policy = sched::SchedPolicy::Drr;
  /// Pass-through scheduler crash injection (chaos tests).
  uint64_t CrashEveryDispatches = 0;
  uint64_t CrashOneIn = 0;
  uint64_t CrashSeed = 0x5eed;
  /// Shared translation cache; null = the process-wide cache.
  prepare::PrepareCache *Cache = nullptr;

  /// Live cross-shard rebalancing: when a shard's live-job count crosses
  /// RebalanceHighWater while another shard idles, up to RebalanceBatch
  /// of the hot shard's jobs are drained at their next slice boundary
  /// and re-admitted on the coldest shard via the checkpoint +
  /// adoptCheckpoint path (exactly-once; results are field-for-field the
  /// unmigrated run's). Off by default: moving jobs costs a cancel +
  /// restore round trip, which only pays off under skew.
  bool Rebalance = false;
  /// Live jobs at which a shard counts as hot; 0 derives a default of
  /// max(4, ShardHighWater / 4).
  uint64_t RebalanceHighWater = 0;
  /// Minimum hot-minus-cold live-job gap before a move is worth it.
  uint64_t RebalanceMinGap = 4;
  /// Jobs marked for migration per rebalance pass.
  uint64_t RebalanceBatch = 4;
};

/// Typed rejection for an invalid ServiceConfig. A hostile or buggy
/// config must not be able to abort a server process: the front end
/// reports one of these (constructor result state + every request
/// answered with Error{BadConfig}) instead of tripping an assert.
enum class ServiceConfigError : uint8_t {
  None = 0,
  NoShards,             ///< Shards == 0
  NoCheckpointCadence,  ///< CheckpointEverySlices == 0: the kill/recover
                        ///< and migration contracts need checkpoints
  QueueBelowInFlightCap, ///< TenantQueueCapacity < MaxInFlightPerTenant:
                         ///< a shard rebuild could not re-admit its jobs
};

const char *serviceConfigErrorName(ServiceConfigError E);

/// Validates \p Cfg without constructing anything.
ServiceConfigError validateServiceConfig(const ServiceConfig &Cfg);

/// Control-plane counters, snapshotted under the service lock.
struct ServiceStats {
  uint64_t Submitted = 0;  ///< jobs admitted (first time, not duplicates)
  uint64_t Duplicates = 0; ///< Submit frames that attached to a live or
                           ///< finished job instead of creating one
  uint64_t Completed = 0;  ///< results harvested from shards
  uint64_t Polls = 0;
  uint64_t Cancels = 0;
  uint64_t RejectedBusy = 0;      ///< Reject{TenantBusy}
  uint64_t RejectedSaturated = 0; ///< Reject{ShardSaturated}
  uint64_t RejectedDegraded = 0;  ///< Reject{ShardDegraded} (incl. down)
  uint64_t RejectedClosed = 0;    ///< Reject{AdmissionClosed}
  uint64_t Errors = 0;            ///< Error frames returned
  uint64_t ShardKills = 0;        ///< killShard() invocations
  uint64_t JobsRecovered = 0;     ///< jobs rebuilt from checkpoints
  uint64_t JobsRecycled = 0;      ///< free-list reuses (vs createJob)
  uint64_t Rebalanced = 0;        ///< cross-shard live-migration moves
  uint64_t MigratedOut = 0;       ///< jobs extracted for a peer process
  uint64_t MigratedIn = 0;        ///< adopted jobs activated by commit
  uint64_t MigrationsAbandoned = 0; ///< extracted jobs re-adopted locally

  uint64_t totalRejected() const {
    return RejectedBusy + RejectedSaturated + RejectedDegraded +
           RejectedClosed;
  }
};

class ServiceFrontEnd {
public:
  explicit ServiceFrontEnd(ServiceConfig Config = {});
  ~ServiceFrontEnd();

  ServiceFrontEnd(const ServiceFrontEnd &) = delete;
  ServiceFrontEnd &operator=(const ServiceFrontEnd &) = delete;

  /// Answers one request frame. Thread-safe; this is the only entry the
  /// transport loop calls. Unknown/response-typed requests get a typed
  /// Error frame, never a crash. The response echoes Req.RequestId.
  Frame handle(const Frame &Req);

  /// The shard tenant \p Tenant hashes onto (FNV-1a, stable).
  unsigned shardOf(const std::string &Tenant) const;

  /// Chaos: kills shard \p S mid-job and rebuilds it. Every live job on
  /// the shard loses its in-flight progress, is re-created on the fresh
  /// scheduler, and resumes from its last durable checkpoint (from the
  /// program start when none was written yet). Jobs that managed to
  /// finish before the kill took effect keep their real results.
  /// Submissions racing the kill see Reject{ShardDegraded}. Blocks
  /// until the shard is serving again. No-op on an already-dying shard
  /// or after shutdown().
  void killShard(unsigned S);

  /// Closes admission, cancels whatever still runs, drains every shard,
  /// and harvests all results — polls keep working afterwards, submits
  /// get Reject{AdmissionClosed}. Idempotent; the destructor calls it.
  void shutdown();

  /// \name Cross-process migration, source side
  /// The driver (Client.h's migrateJob) runs extract → MigrateOffer →
  /// MigrateCommit against the peer, then completeMigration with the
  /// peer's Result — or abandonMigration if the peer never adopted.
  /// @{

  /// Drains job \p T at its next slice boundary and packages it as a
  /// MigrateOffer frame (program text, sc-snap checkpoint, tier heat).
  /// Blocks until the job settles. On success the job no longer runs
  /// here — the record stays, answering polls with Pending, until
  /// completeMigration or abandonMigration resolves it. Returns false
  /// (and keeps the job running locally) if the ticket is unknown, the
  /// job finished or was client-cancelled first, it is already migrated,
  /// or the service is shutting down.
  bool extractForMigration(const JobTicket &T, Frame &Offer);

  /// Lands the peer's final \p Result on the extracted job \p T: the
  /// record completes exactly as if it had run locally (polls return the
  /// result, Completed ticks once). The source must call exactly one of
  /// completeMigration / abandonMigration per successful extract, and
  /// only completeMigration after a successful commit — committing and
  /// also resuming locally would execute the job twice.
  void completeMigration(const JobTicket &T, const Frame &Result);

  /// Aborts a torn migration: re-admits the extracted job \p T on its
  /// home shard from the escrowed checkpoint. Safe whenever the peer
  /// answered UnknownMigration (the offer was lost; nothing executed
  /// remotely). Returns false if the shard is mid-kill (retry) or the
  /// ticket is not in the extracted state.
  bool abandonMigration(const JobTicket &T);

  /// @}

  /// The constructor's config validation result. Anything but None means
  /// the front end built no shards and answers every request with
  /// Error{BadConfig}.
  ServiceConfigError configError() const { return ConfigErr; }

  ServiceStats statsSnapshot() const;

  /// The full dashboard: service counters plus one scheduler snapshot
  /// per shard (sched::snapshotToJson), as carried by StatsReply.
  metrics::Json statsJson() const;

  const ServiceConfig &config() const { return Cfg; }

private:
  struct Program;
  struct JobRecord;
  struct Adoption;

  Frame submitReq(const Frame &Req);
  Frame pollReq(const Frame &Req);
  Frame cancelReq(const Frame &Req);
  Frame statsReq(const Frame &Req);
  Frame migrateOfferReq(const Frame &Req);
  Frame migrateCommitReq(const Frame &Req);

  Frame errorFrame(const Frame &Req, ServiceError E, std::string Detail);
  Frame rejectFrame(const Frame &Req, RejectCode Code);
  Frame resultFrame(const Frame &Req, const JobRecord &R) const;

  /// Compiles (or fetches) the program for \p Source; Mu held.
  Program *getProgram(const std::string &Source, std::string &Err);
  /// Harvests finished jobs on shard \p S into their records and the
  /// free list, and executes pending cross-shard moves; Mu held, shard
  /// must be up.
  void sweepShard(unsigned S);
  /// Takes a job for (program, engine, tenant) from shard \p S's free
  /// list or creates one; Mu held.
  sched::Job *obtainJob(unsigned S, Program &P, engine::EngineId E,
                        sched::TenantId T, sched::JobSpec Spec);
  sched::TenantId shardTenant(unsigned S, const std::string &Tenant);
  void buildShard(unsigned S);

  /// Marks up to RebalanceBatch jobs on the hottest shard for migration
  /// to the coldest (cancel now; the move happens in sweepShard when
  /// each victim settles at its slice boundary). Mu held; no-op unless
  /// Cfg.Rebalance and the hot/cold gap justifies a move.
  void maybeRebalance();
  /// Re-admits record \p R (whose job has settled and been released) on
  /// shard \p To from checkpoint \p Ckpt (empty = fresh start). Mu held;
  /// the target shard must be up and accepting. Updates shard
  /// bookkeeping but no counters.
  void placeRecord(JobRecord &R, unsigned To,
                   const std::vector<uint8_t> &Ckpt);
  /// Activates the inert adoption \p A (Mu held): admits the job as if
  /// submitted here, restoring its snapshot. Returns the reply frame.
  Frame activateAdoption(const Frame &Req, Adoption &A);

  ServiceConfig Cfg;
  ServiceConfigError ConfigErr = ServiceConfigError::None;

  mutable std::mutex Mu;
  std::vector<std::unique_ptr<sched::SessionScheduler>> Shards;
  std::vector<uint8_t> ShardDown; ///< 1 while killShard rebuilds it
  std::vector<uint64_t> ShardLive;
  /// Per shard: jobs that migrated onto / off this shard (both the
  /// cross-shard rebalancer and cross-process adoption/extraction).
  std::vector<uint64_t> ShardMigrationsIn;
  std::vector<uint64_t> ShardMigrationsOut;
  /// Per shard: tenant name → scheduler tenant id.
  std::vector<std::map<std::string, sched::TenantId>> ShardTenants;
  /// Per shard: (program identity, engine, scheduler tenant) → idle
  /// recycled jobs (a job's tenant binding is fixed at creation).
  using FreeKey = std::tuple<uint64_t, uint8_t, sched::TenantId>;
  std::vector<std::map<FreeKey, std::vector<sched::Job *>>> FreeJobs;
  /// Per shard: records whose job is still live (sweep scans these).
  std::vector<std::vector<JobRecord *>> LiveRecs;
  std::map<std::string, std::unique_ptr<Program>> Programs; // by source
  std::map<JobTicket, std::unique_ptr<JobRecord>> Records;
  /// Jobs offered to us by a peer, keyed by ticket: inert after
  /// MigrateOffer, activated (admitted into Records) by MigrateCommit.
  std::map<JobTicket, std::unique_ptr<Adoption>> Adoptions;
  std::map<std::string, uint64_t> InFlight; // per tenant, across shards
  ServiceStats Stats;
  bool ShuttingDown = false;
};

/// Serves one connection: reassembles frames from \p Ch, answers each
/// through \p FE, returns when the peer closes (or the stream poisons —
/// a torn frame prefix is unrecoverable, the peer must reconnect).
/// Decodable-but-invalid frames get typed Error responses inline.
void serveChannel(ServiceFrontEnd &FE, Channel &Ch);

} // namespace sc::service

#endif // SC_SERVICE_SERVICE_H
