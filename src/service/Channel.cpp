//===-- service/Channel.cpp - Byte transports + chaos injection -----------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "service/Channel.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace sc;
using namespace sc::service;

//===----------------------------------------------------------------------===//
// Local pair
//===----------------------------------------------------------------------===//

namespace {

/// One direction of an in-process connection.
struct Pipe {
  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<uint8_t> Bytes;
  bool Closed = false;

  bool push(const uint8_t *Data, size_t N) {
    {
      std::lock_guard<std::mutex> L(Mu);
      if (Closed)
        return false;
      Bytes.insert(Bytes.end(), Data, Data + N);
    }
    Cv.notify_all();
    return true;
  }

  int64_t pull(uint8_t *Buf, size_t N, uint64_t TimeoutNs) {
    std::unique_lock<std::mutex> L(Mu);
    auto Ready = [&] { return !Bytes.empty() || Closed; };
    if (TimeoutNs == 0)
      Cv.wait(L, Ready);
    else if (!Cv.wait_for(L, std::chrono::nanoseconds(TimeoutNs), Ready))
      return -1;
    if (Bytes.empty())
      return 0; // closed and drained
    const size_t Take = std::min(N, Bytes.size());
    std::copy_n(Bytes.begin(), Take, Buf);
    Bytes.erase(Bytes.begin(), Bytes.begin() + static_cast<ptrdiff_t>(Take));
    return static_cast<int64_t>(Take);
  }

  void shut() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Closed = true;
    }
    Cv.notify_all();
  }
};

struct PairState {
  Pipe AtoB, BtoA;
};

class LocalChannel : public Channel {
public:
  LocalChannel(std::shared_ptr<PairState> S, bool IsA)
      : State(std::move(S)), IsA(IsA) {}
  ~LocalChannel() override { close(); }

  bool send(const uint8_t *Data, size_t N) override {
    return (IsA ? State->AtoB : State->BtoA).push(Data, N);
  }
  int64_t recv(uint8_t *Buf, size_t N, uint64_t TimeoutNs) override {
    return (IsA ? State->BtoA : State->AtoB).pull(Buf, N, TimeoutNs);
  }
  void close() override {
    // Either end closing kills both directions, like a dropped socket.
    State->AtoB.shut();
    State->BtoA.shut();
  }

private:
  std::shared_ptr<PairState> State;
  bool IsA;
};

} // namespace

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
sc::service::makeLocalPair() {
  auto State = std::make_shared<PairState>();
  return {std::make_unique<LocalChannel>(State, true),
          std::make_unique<LocalChannel>(State, false)};
}

//===----------------------------------------------------------------------===//
// ChaosChannel
//===----------------------------------------------------------------------===//

ChaosConfig ChaosConfig::storm(uint64_t Seed) {
  ChaosConfig C;
  C.Seed = Seed;
  C.DropPerMille = 120;
  C.DupPerMille = 120;
  C.TruncatePerMille = 25;
  C.ReorderPerMille = 120;
  C.DelayPerMille = 120;
  C.DelayMaxNs = 100'000;
  return C;
}

bool ChaosChannel::send(const uint8_t *Data, size_t N) {
  uint64_t DelayNs = 0;
  std::vector<uint8_t> Flush;
  size_t SendLen = N;   // < N means torn write
  unsigned Copies = 1;  // 0 = dropped, 2 = duplicated
  bool Tear = false;
  {
    std::lock_guard<std::mutex> L(Mu);
    if (Cfg.DelayPerMille && ChaosRng.below(1000) < Cfg.DelayPerMille) {
      DelayNs = ChaosRng.below(Cfg.DelayMaxNs + 1);
      ++Counts.Delays;
    }
    if (Cfg.DropPerMille && ChaosRng.below(1000) < Cfg.DropPerMille) {
      Copies = 0;
      ++Counts.Drops;
    } else if (Cfg.TruncatePerMille && N > 1 &&
               ChaosRng.below(1000) < Cfg.TruncatePerMille) {
      SendLen = 1 + static_cast<size_t>(ChaosRng.below(N - 1));
      Tear = true;
      ++Counts.Truncations;
    } else if (Cfg.DupPerMille && ChaosRng.below(1000) < Cfg.DupPerMille) {
      Copies = 2;
      ++Counts.Dups;
    } else if (Cfg.ReorderPerMille && Held.empty() &&
               ChaosRng.below(1000) < Cfg.ReorderPerMille) {
      // Hold this frame; it goes out after the next one.
      Held.assign(Data, Data + N);
      ++Counts.Reorders;
      Copies = 0;
      Tear = false;
    }
    if (Copies > 0 && !Held.empty() && !Tear) {
      // A frame is queued behind this one: emit current then held.
      Flush.swap(Held);
    }
  }

  if (DelayNs)
    std::this_thread::sleep_for(std::chrono::nanoseconds(DelayNs));
  if (Tear) {
    // Torn write: a prefix escapes, then the connection dies. The peer's
    // FrameBuffer stalls (or poisons) and the endpoint must reconnect —
    // exactly what a mid-frame TCP reset looks like.
    Inner->send(Data, SendLen);
    Inner->close();
    return false;
  }
  bool Ok = true;
  for (unsigned I = 0; I < Copies; ++I)
    Ok = Inner->send(Data, N) && Ok;
  if (!Flush.empty())
    Ok = Inner->send(Flush.data(), Flush.size()) && Ok;
  // A dropped frame reports success: the sender must discover the loss
  // end to end (timeout + retry), not from the transport.
  return Copies == 0 ? true : Ok;
}

int64_t ChaosChannel::recv(uint8_t *Buf, size_t N, uint64_t TimeoutNs) {
  return Inner->recv(Buf, N, TimeoutNs);
}

void ChaosChannel::close() {
  std::vector<uint8_t> Flush;
  {
    std::lock_guard<std::mutex> L(Mu);
    Flush.swap(Held);
  }
  if (!Flush.empty())
    Inner->send(Flush.data(), Flush.size());
  Inner->close();
}

ChaosChannel::Injected ChaosChannel::injected() const {
  std::lock_guard<std::mutex> L(Mu);
  return Counts;
}

//===----------------------------------------------------------------------===//
// TCP
//===----------------------------------------------------------------------===//

namespace {

class TcpChannel : public Channel {
public:
  explicit TcpChannel(int Fd) : Fd(Fd) {}
  ~TcpChannel() override {
    close();
    // The fd is released only here, after every user of this object is
    // gone — a concurrent recv() racing close() must never see the fd
    // number recycled onto some other connection.
    ::close(Fd);
  }

  bool send(const uint8_t *Data, size_t N) override {
    size_t Off = 0;
    while (Off < N) {
      const ssize_t W =
          ::send(Fd, Data + Off, N - Off, MSG_NOSIGNAL);
      if (W <= 0) {
        if (W < 0 && (errno == EINTR))
          continue;
        return false;
      }
      Off += static_cast<size_t>(W);
    }
    return true;
  }

  int64_t recv(uint8_t *Buf, size_t N, uint64_t TimeoutNs) override {
    if (TimeoutNs) {
      pollfd P{Fd, POLLIN, 0};
      const int Ms = static_cast<int>(
          std::min<uint64_t>((TimeoutNs + 999'999) / 1'000'000, 1u << 30));
      const int R = ::poll(&P, 1, Ms);
      if (R == 0)
        return -1;
      if (R < 0)
        return 0;
    }
    const ssize_t R = ::recv(Fd, Buf, N, 0);
    if (R < 0)
      return errno == EINTR ? -1 : 0;
    return static_cast<int64_t>(R);
  }

  void close() override {
    // shutdown() unblocks a recv() parked in poll() and makes every
    // later send/recv fail; the fd stays allocated until destruction.
    if (!ClosedFlag.exchange(true))
      ::shutdown(Fd, SHUT_RDWR);
  }

private:
  int Fd;
  std::atomic<bool> ClosedFlag{false};
};

} // namespace

std::unique_ptr<Channel> sc::service::wrapTcpFd(int Fd) {
  const int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return std::make_unique<TcpChannel>(Fd);
}

std::unique_ptr<Channel> sc::service::connectTcp(uint16_t Port) {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return nullptr;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return nullptr;
  }
  return wrapTcpFd(Fd);
}
