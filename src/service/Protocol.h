//===-- service/Protocol.h - Execution-service wire protocol ---*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "sc-wire" binary protocol of the networked execution service:
/// length-prefixed, checksummed, versioned frames, in the same hardened
/// style as the sc-snap snapshot format (src/snapshot). Every frame is
///
///   [ 0.. 4) magic "SCW1"
///   [ 4.. 8) u32 format version (1 for the PR 9 frame types, 2 for the
///            migration family — see below)
///   [ 8..12) u32 total frame length in bytes (length prefix)
///   [12..13) u8  frame type
///   [13..16) reserved, written zero
///   [16..24) u64 request id (echoed verbatim in the response, so a
///            client can match replies to retries and discard the stale
///            duplicates a lossy transport produces)
///   [24..  ) type-specific payload (strings are u32 length + bytes)
///   [last 8) u64 FNV-1a checksum over every preceding byte
///
/// decodeFrame() never crashes, asserts, or allocates proportionally to
/// hostile length fields: every truncation, corruption, or inconsistency
/// gets a typed ServiceError (the frame-fuzz tests mutate every frame
/// type and require exactly that). FrameBuffer reassembles frames from
/// an arbitrarily fragmented byte stream (TCP) using the length prefix.
///
/// Request/response pairs (docs/SERVICE.md has the full contract):
///
///   Submit        -> SubmitAck | Reject | Result | Error
///   Poll          -> Result | Pending | Error
///   Cancel        -> Pending | Result | Error
///   Stats         -> StatsReply
///   MigrateOffer  -> MigrateAccept | Error          (v2)
///   MigrateCommit -> Pending | Result | Reject | Error  (v2)
///
/// Submit is idempotent on a JobTicket (tenant, token): a retried or
/// duplicated Submit frame attaches to the existing job instead of
/// creating a second one — the exactly-once keystone. The migration
/// family inherits the same discipline: a re-sent MigrateOffer for a
/// known ticket re-accepts it, and MigrateCommit is idempotent — the
/// first commit activates the adopted job, every retry polls it, and a
/// commit after completion returns the identical cached Result. Version
/// negotiation is per frame: both sides keep speaking the v1 types in
/// byte-identical v1 frames (a v1-only peer is unaffected until it sees
/// a migration frame, which it rejects as BadVersion), and the v2 types
/// must carry version 2 — a migration frame stamped v1 is BadVersion.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SERVICE_PROTOCOL_H
#define SC_SERVICE_PROTOCOL_H

#include "service/JobTicket.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sc::service {

/// Typed rejection reasons for hostile or malformed bytes, plus the
/// request-level error codes an Error frame carries. Decode-level values
/// mirror snapshot::SnapshotError; request-level values describe a
/// well-formed frame the service refuses to act on.
enum class ServiceError : uint8_t {
  None = 0,
  // --- decode level: the bytes are not a valid frame -------------------
  Truncated,      ///< buffer ends before the advertised layout does
  BadMagic,       ///< not an sc-wire frame at all
  BadVersion,     ///< a protocol version this build does not speak
  BadLength,      ///< length prefix or a string length disagrees
  BadChecksum,    ///< trailing FNV-1a mismatch (corruption in flight)
  BadFrameType,   ///< unknown frame type byte
  BadFieldValue,  ///< a field is internally inconsistent (enum out of
                  ///< range, flag not 0/1)
  Oversized,      ///< frame or string above the protocol caps
  // --- request level: valid frame, refused request ---------------------
  UnknownJob,     ///< Poll/Cancel for a (tenant, token) never submitted
  CompileFailed,  ///< the submitted program does not compile
  BadWord,        ///< the entry word does not exist in the program
  BadEngine,      ///< engine id out of range or not servable (an engine
                  ///< whose dispatches cannot run concurrently across
                  ///< shards is refused, not serialized process-wide)
  Shutdown,       ///< the service is shutting down
  BadSnapshot,      ///< a MigrateOffer's snapshot bytes failed to validate
  MigrateRefused,   ///< the adopter refuses this ticket outright (e.g. it
                    ///< already owns a live job with the same ticket)
  UnknownMigration, ///< MigrateCommit for a ticket never offered here —
                    ///< the offer was lost; the source may safely abandon
                    ///< and resume the job locally (nothing was executed)
  BadConfig,        ///< the front end was built over an invalid
                    ///< ServiceConfig and refuses all requests
};

const char *serviceErrorName(ServiceError E);

/// True for the decode-level values: the bytes themselves were bad, so a
/// client should treat the request as never-delivered (retryable).
bool isDecodeError(ServiceError E);

enum class FrameType : uint8_t {
  SubmitReq = 1, ///< submit a job (idempotent on tenant+token)
  PollReq = 2,   ///< ask for a job's result
  CancelReq = 3, ///< request cancellation of a job
  StatsReq = 4,  ///< ask for the service counter snapshot
  SubmitAck = 5, ///< job admitted (or duplicate of a live job)
  Reject = 6,    ///< overload backpressure: try again later
  Result = 7,    ///< final job result (exactly one per token)
  Pending = 8,   ///< poll answer: not done yet
  Error = 9,     ///< typed refusal (ServiceError + detail)
  StatsReply = 10, ///< service counters as a JSON document
  // --- protocol v2: live migration (frames below carry version 2) ------
  MigrateOffer = 11,  ///< ship a job: ticket, program, snapshot, heat
  MigrateAccept = 12, ///< offer answer: adopted (inert until commit) or
                      ///< refused-for-capacity with a retry hint
  MigrateCommit = 13, ///< activate the adopted job; idempotent on the
                      ///< ticket (replies Pending until done, then the
                      ///< cached Result forever)
};

const char *frameTypeName(FrameType T);

/// True for the frame types introduced by protocol v2; these are encoded
/// with format version 2 and rejected as BadVersion when stamped v1.
inline bool isMigrateFrame(FrameType T) {
  return T == FrameType::MigrateOffer || T == FrameType::MigrateAccept ||
         T == FrameType::MigrateCommit;
}

/// Why a Submit was shed. Carried in a Reject frame together with a
/// retry-after hint — the 429 of the protocol.
enum class RejectCode : uint8_t {
  TenantBusy = 1,      ///< per-tenant in-flight cap reached
  ShardSaturated = 2,  ///< the tenant's shard admission queue is full
  ShardDegraded = 3,   ///< the shard is over its in-flight high water
                       ///< and sheds new work to protect live jobs
  AdmissionClosed = 4, ///< drain/shutdown in progress
};

const char *rejectCodeName(RejectCode C);

/// Protocol caps: a hostile 12-byte prefix cannot demand unbounded
/// allocation. Program sources and outputs above these are refused.
inline constexpr uint32_t MaxFrameBytes = 1u << 22;
inline constexpr uint32_t MaxStringBytes = 1u << 20;

/// Bytes of the fixed prefix (magic..request id); a stream reader needs
/// this many bytes to learn the total frame length.
inline constexpr size_t FramePrefixBytes = 24;

/// One decoded frame: the type tag plus every payload field any type
/// uses (unused fields keep their defaults; encode writes only the
/// fields of Type, decode fills only those).
struct Frame {
  FrameType Type = FrameType::SubmitReq;
  uint64_t RequestId = 0;

  // SubmitReq
  std::string Tenant;       ///< tenant key (also Poll/Cancel)
  uint64_t Token = 0;       ///< client-chosen job token (idempotency key)
  uint64_t DeadlineNs = 0;  ///< job deadline, relative; 0 = none
  uint64_t FuelSteps = UINT64_MAX; ///< guest-step budget
  uint8_t Engine = 0;       ///< engine::EngineId as u8
  std::string Source;       ///< Forth program text
  std::string Word;         ///< entry word name

  // SubmitAck
  uint8_t Duplicate = 0; ///< 1 when the token named an existing job
  uint32_t Shard = 0;    ///< shard the job lives on

  // Reject
  RejectCode Code = RejectCode::TenantBusy;
  uint64_t RetryAfterNs = 0; ///< server's backoff hint

  // Result
  uint8_t Stop = 0;    ///< session::StopKind as u8
  uint8_t Status = 0;  ///< vm::RunStatus as u8
  uint64_t Steps = 0;  ///< guest steps retired
  uint64_t Slices = 0; ///< engine entries
  std::string Output;  ///< everything the program printed

  // Pending
  uint8_t JobStateVal = 0; ///< sched::JobState as u8

  // Error
  ServiceError Err = ServiceError::None;
  std::string Detail;

  // StatsReply
  std::string StatsJson;

  // MigrateOffer (also reuses Tenant/Token/DeadlineNs/FuelSteps/Engine/
  // Source/Word from SubmitReq — an offer is a submit plus state)
  std::vector<uint8_t> Snapshot; ///< sc-snap bytes; empty = never ran,
                                 ///< the adopter starts the job fresh
  uint64_t HeatSteps = 0;        ///< tier heat earned at the source
  uint32_t TierRung = 0;         ///< ladder rung the job ran on

  // MigrateAccept
  uint8_t Accepted = 0; ///< 1 = adopted (inert until commit), 0 = refused
                        ///< for capacity; RetryAfterNs hints the backoff

  /// The job identity of any job-addressed frame (Tenant/Token fields).
  JobTicket ticket() const { return JobTicket(Tenant, Token); }
  void setTicket(const JobTicket &T) {
    Tenant = T.Tenant;
    Token = T.Token;
  }
};

/// Serializes \p F into a sealed wire frame (length prefix and checksum
/// written). Asserts (debug) if a string exceeds MaxStringBytes.
std::vector<uint8_t> encodeFrame(const Frame &F);

/// Validates \p Data end to end — magic, version, length prefix, string
/// lengths, enum ranges, checksum — and decodes into \p Out. On any
/// error \p Out is untouched and the typed reason is returned; hostile
/// bytes get a diagnosis, never UB (the frame fuzz tests pin this).
ServiceError decodeFrame(const uint8_t *Data, size_t N, Frame &Out);
ServiceError decodeFrame(const std::vector<uint8_t> &Data, Frame &Out);

/// The checksum decodeFrame verifies: FNV-1a 64 over all bytes before
/// the trailing checksum field. Exposed with resealFrame() so hostile-
/// input tests can craft *sealed* corruptions that reach the inner typed
/// rejections instead of stopping at BadChecksum.
uint64_t frameChecksum(const uint8_t *Data, size_t N);

/// Recomputes and rewrites the trailing checksum of \p F in place.
/// Testing support only; no production path ever reseals.
void resealFrame(std::vector<uint8_t> &F);

/// Best-effort request id of a frame too corrupt to decode: the raw
/// field if at least the fixed prefix is present, else 0. Lets an Error
/// response still name the request it answers when possible.
uint64_t peekRequestId(const uint8_t *Data, size_t N);

/// Reassembles whole frames from an arbitrarily fragmented byte stream.
/// feed() appends bytes; next() extracts the next complete frame's raw
/// bytes. A malformed prefix (bad magic/version/oversized length) poisons
/// the stream — with no trustworthy length there is nothing to resync on,
/// exactly like a real torn TCP write — and next() reports the typed
/// error until reset().
class FrameBuffer {
public:
  void feed(const uint8_t *Data, size_t N);
  void feed(const std::vector<uint8_t> &Data) { feed(Data.data(), Data.size()); }

  /// True: \p Out holds the raw bytes of one complete frame (still to be
  /// decodeFrame()d). False: no complete frame buffered; \p Err is None
  /// when more bytes may complete one, else the poison reason.
  bool next(std::vector<uint8_t> &Out, ServiceError &Err);

  /// Drops all buffered bytes and clears any poison (reconnect).
  void reset();

  size_t buffered() const { return Buf.size() - Pos; }

private:
  std::vector<uint8_t> Buf;
  size_t Pos = 0;
  ServiceError Poison = ServiceError::None;
};

} // namespace sc::service

#endif // SC_SERVICE_PROTOCOL_H
