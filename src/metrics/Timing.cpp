//===-- metrics/Timing.cpp - Warmed-up repetition timing ------------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "metrics/Timing.h"

#include <cstdlib>
#include <cstring>

using namespace sc::metrics;

bool sc::metrics::benchSmokeMode() {
  const char *V = std::getenv("SC_BENCH_SMOKE");
  return V && *V && std::strcmp(V, "0") != 0;
}

int sc::metrics::smokeAdjustedReps(int Full) {
  return benchSmokeMode() ? (Full < 3 ? Full : 3) : Full;
}
