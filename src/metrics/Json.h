//===-- metrics/Json.h - Dependency-free JSON value model ------*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON value with a writer and a parser, used by the bench
/// observability pipeline (BENCH_results.json) and the comparator. No
/// external dependencies; objects preserve insertion order so emitted
/// documents are stable across runs and diffs stay readable.
///
/// Numbers keep their source spelling when parsed and are re-emitted
/// verbatim, so a write/parse/write cycle round-trips exactly (the
/// metrics tests rely on this for the Fig. 18 table).
///
//===----------------------------------------------------------------------===//

#ifndef SC_METRICS_JSON_H
#define SC_METRICS_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace sc::metrics {

/// A JSON value: null, bool, number, string, array or object.
class Json {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Json() : K(Kind::Null) {}
  static Json null() { return Json(); }
  static Json boolean(bool B);
  static Json number(int64_t V);
  static Json number(uint64_t V);
  static Json number(double V);
  /// A number from its exact textual spelling (must be a valid JSON
  /// number; asserted in debug builds).
  static Json numberText(std::string Spelling);
  static Json string(std::string S);
  static Json array();
  static Json object();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Value accessors; asserted kind in debug builds, zero/empty otherwise.
  bool asBool() const;
  double asDouble() const;
  int64_t asInt() const;
  const std::string &asString() const;
  /// The exact numeric spelling (for Number values).
  const std::string &numberSpelling() const;

  /// --- Array interface ---------------------------------------------------
  size_t size() const;
  const Json &at(size_t I) const;
  Json &at(size_t I);
  void push(Json V);

  /// --- Object interface --------------------------------------------------
  /// Sets key \p Name (replacing an existing entry, keeping its position).
  void set(const std::string &Name, Json V);
  /// Member lookup; returns nullptr when absent or not an object.
  const Json *find(const std::string &Name) const;
  Json *find(const std::string &Name);
  bool has(const std::string &Name) const { return find(Name) != nullptr; }
  const std::vector<std::pair<std::string, Json>> &members() const;

  /// Serializes the value. Indent > 0 pretty-prints with that many spaces
  /// per level; 0 emits the compact form.
  std::string dump(unsigned Indent = 2) const;

  /// Parses JSON text. Returns false and sets \p Err (with an offset)
  /// on malformed input.
  static bool parse(const std::string &Text, Json &Out, std::string *Err);

  /// Structural equality (numbers compare by spelling).
  friend bool operator==(const Json &A, const Json &B);
  friend bool operator!=(const Json &A, const Json &B) { return !(A == B); }

private:
  Kind K;
  bool BoolVal = false;
  std::string Str; // string value or number spelling
  std::vector<Json> Arr;
  std::vector<std::pair<std::string, Json>> Obj;

  void write(std::string &Out, unsigned Indent, unsigned Depth) const;
};

bool operator==(const Json &A, const Json &B);

/// Escapes \p S as the contents of a JSON string literal (no quotes).
std::string jsonEscape(const std::string &S);

} // namespace sc::metrics

#endif // SC_METRICS_JSON_H
