//===-- metrics/Env.cpp - Build/run environment capture -------------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "metrics/Env.h"

#include "metrics/Counters.h"
#include "metrics/Json.h"

#include <ctime>
#include <fstream>
#include <string>

using namespace sc;
using namespace sc::metrics;

#ifndef SC_GIT_REV
#define SC_GIT_REV "unknown"
#endif
#ifndef SC_BUILD_FLAGS
#define SC_BUILD_FLAGS ""
#endif
#ifndef SC_BUILD_TYPE
#define SC_BUILD_TYPE ""
#endif

static std::string cpuModel() {
  std::ifstream In("/proc/cpuinfo");
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind("model name", 0) != 0)
      continue;
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      break;
    size_t Start = Line.find_first_not_of(" \t", Colon + 1);
    return Start == std::string::npos ? "" : Line.substr(Start);
  }
  return "unknown";
}

Json sc::metrics::captureEnv() {
  Json Env = Json::object();
#if defined(__VERSION__)
  Env.set("compiler", Json::string(__VERSION__));
#else
  Env.set("compiler", Json::string("unknown"));
#endif
  Env.set("cxx_flags", Json::string(SC_BUILD_FLAGS));
  Env.set("build_type", Json::string(SC_BUILD_TYPE));
  Env.set("git_rev", Json::string(SC_GIT_REV));
  Env.set("cpu", Json::string(cpuModel()));
  Env.set("stats", Json::boolean(statsEnabled()));

  char Stamp[32] = "unknown";
  std::time_t Now = std::time(nullptr);
  if (std::tm *Utc = std::gmtime(&Now))
    std::strftime(Stamp, sizeof(Stamp), "%Y-%m-%dT%H:%M:%SZ", Utc);
  Env.set("timestamp", Json::string(Stamp));
  return Env;
}
