//===-- metrics/Compare.h - Bench-result regression comparator -*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diffs two bench-result documents (per-bench "sc-bench-v1" files or
/// merged "sc-bench-results-v1" roll-ups) and classifies every
/// difference. "exact" and "counters" entries flag any deviation —
/// these carry the paper's state counts and cost-model numbers, which
/// are deterministic. "timing" entries compare numeric values within a
/// relative threshold so wall-clock noise does not fail CI, while real
/// slowdowns beyond the threshold do.
///
//===----------------------------------------------------------------------===//

#ifndef SC_METRICS_COMPARE_H
#define SC_METRICS_COMPARE_H

#include <string>
#include <vector>

namespace sc::metrics {

class Json;

struct CompareOptions {
  /// Allowed relative change on timing entries before a slowdown is a
  /// regression (0.25 = +25%). See EXPERIMENTS.md for how this was
  /// chosen.
  double TimingThreshold = 0.25;
};

/// One observed difference.
struct CompareIssue {
  std::string Where;  ///< "bench/entry" or "bench/entry/key"
  std::string Detail; ///< human-readable description
  bool Regression;    ///< true when this difference should fail CI
};

struct CompareResult {
  std::vector<CompareIssue> Issues;

  bool regression() const {
    for (const CompareIssue &I : Issues)
      if (I.Regression)
        return true;
    return false;
  }

  /// One line per issue, regressions first.
  std::string render() const;
};

/// Compares \p Current against \p Baseline. Entries present only in the
/// baseline are regressions (coverage loss); entries present only in the
/// current file are notes.
CompareResult compareResults(const Json &Baseline, const Json &Current,
                             const CompareOptions &Opts = {});

/// True when \p Text spells a number; sets \p Value.
bool parseNumericCell(const std::string &Text, double &Value);

/// Derives dispatches-per-guest-step from an entry's values payload:
/// benches that compare engine dispatch efficiency record the raw
/// "dispatches" and "guest_steps" counts, and the comparator re-derives
/// the ratio on both sides instead of trusting a precomputed one.
/// Returns false when either count is missing, non-numeric, or the step
/// count is zero.
bool derivedDispatchesPerStep(const Json &Values, double &Out);

} // namespace sc::metrics

#endif // SC_METRICS_COMPARE_H
