//===-- metrics/Env.h - Build/run environment capture ----------*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Captures the environment a benchmark ran in — compiler, build flags,
/// CPU model, git revision, SC_STATS setting — as a JSON object embedded
/// in every result file. The comparator never diffs this section; it
/// exists so a BENCH_results.json is self-describing.
///
//===----------------------------------------------------------------------===//

#ifndef SC_METRICS_ENV_H
#define SC_METRICS_ENV_H

namespace sc::metrics {

class Json;

/// Returns the environment object: compiler, cxx_flags, build_type,
/// git_rev (build-time values from CMake), cpu (from /proc/cpuinfo when
/// available), stats (SC_STATS on/off) and a UTC timestamp.
Json captureEnv();

} // namespace sc::metrics

#endif // SC_METRICS_ENV_H
