//===-- metrics/Compare.cpp - Bench-result regression comparator ----------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "metrics/Compare.h"

#include "metrics/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace sc;
using namespace sc::metrics;

bool sc::metrics::parseNumericCell(const std::string &Text, double &Value) {
  if (Text.empty())
    return false;
  const char *S = Text.c_str();
  char *End = nullptr;
  Value = std::strtod(S, &End);
  return End == S + Text.size();
}

bool sc::metrics::derivedDispatchesPerStep(const Json &Values, double &Out) {
  const Json *D = Values.find("dispatches");
  const Json *S = Values.find("guest_steps");
  if (!D || !S || !D->isNumber() || !S->isNumber())
    return false;
  const double Steps = S->asDouble();
  if (Steps <= 0)
    return false;
  Out = D->asDouble() / Steps;
  return true;
}

std::string CompareResult::render() const {
  std::string Out;
  for (int Pass = 0; Pass < 2; ++Pass)
    for (const CompareIssue &I : Issues)
      if (I.Regression == (Pass == 0)) {
        Out += I.Regression ? "REGRESSION " : "note       ";
        Out += I.Where;
        Out += ": ";
        Out += I.Detail;
        Out += '\n';
      }
  return Out;
}

namespace {

class Comparer {
  const CompareOptions &Opts;
  CompareResult &Res;

public:
  Comparer(const CompareOptions &O, CompareResult &R) : Opts(O), Res(R) {}

  void issue(const std::string &Where, std::string Detail,
             bool Regression) {
    Res.Issues.push_back({Where, std::move(Detail), Regression});
  }

  /// Numeric timing comparison: slower beyond the threshold is a
  /// regression, faster beyond it is a note.
  void compareTimingNumber(const std::string &Where, double Base,
                           double Cur) {
    if (Base <= 0) {
      if (Cur != Base)
        issue(Where, "baseline is zero, current is " + std::to_string(Cur),
              false);
      return;
    }
    double Rel = (Cur - Base) / Base;
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "%+.1f%% (%g -> %g)", Rel * 100, Base,
                  Cur);
    if (Rel > Opts.TimingThreshold)
      issue(Where, std::string("slower ") + Buf, true);
    else if (Rel < -Opts.TimingThreshold)
      issue(Where, std::string("faster ") + Buf, false);
  }

  void compareCell(const std::string &Where, const std::string &Base,
                   const std::string &Cur, bool Timing) {
    if (Base == Cur)
      return;
    double BV, CV;
    if (Timing && parseNumericCell(Base, BV) && parseNumericCell(Cur, CV)) {
      compareTimingNumber(Where, BV, CV);
      return;
    }
    issue(Where, "'" + Base + "' -> '" + Cur + "'", true);
  }

  void compareTables(const std::string &Where, const Json &Base,
                     const Json &Cur, bool Timing) {
    if (Base.size() != Cur.size()) {
      issue(Where, "row count " + std::to_string(Base.size()) + " -> " +
                       std::to_string(Cur.size()),
            true);
      return;
    }
    for (size_t R = 0; R < Base.size(); ++R) {
      const Json &BR = Base.at(R), &CR = Cur.at(R);
      if (BR.size() != CR.size()) {
        issue(Where + "/row" + std::to_string(R), "column count changed",
              true);
        continue;
      }
      for (size_t C = 0; C < BR.size(); ++C)
        compareCell(Where + "/row" + std::to_string(R) + "/col" +
                        std::to_string(C),
                    BR.at(C).asString(), CR.at(C).asString(), Timing);
    }
  }

  void compareValues(const std::string &Where, const Json &Base,
                     const Json &Cur, bool Timing) {
    // Dispatch-efficiency entries carry raw "dispatches"/"guest_steps"
    // counts; the derived dispatches-per-guest-step ratio is asserted on
    // top of the per-key comparison, so the per-step claim fails CI even
    // when both raw counts move together (e.g. a resized workload).
    double BaseRate = 0, CurRate = 0;
    if (derivedDispatchesPerStep(Base, BaseRate) &&
        derivedDispatchesPerStep(Cur, CurRate) && BaseRate != CurRate) {
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf), "%+.1f%% (%g -> %g)",
                    (CurRate - BaseRate) / BaseRate * 100, BaseRate,
                    CurRate);
      if (CurRate > BaseRate)
        issue(Where + "/dispatches_per_step(derived)",
              std::string("worsened ") + Buf, true);
      else
        issue(Where + "/dispatches_per_step(derived)",
              std::string("improved ") + Buf, false);
    }
    for (const auto &M : Base.members()) {
      const Json *CV = Cur.find(M.first);
      const std::string Sub = Where + "/" + M.first;
      if (!CV) {
        issue(Sub, "missing in current file", true);
        continue;
      }
      if (M.second == *CV)
        continue;
      if (Timing && M.second.isNumber() && CV->isNumber()) {
        compareTimingNumber(Sub, M.second.asDouble(), CV->asDouble());
        continue;
      }
      issue(Sub, "'" + M.second.dump(0) + "' -> '" + CV->dump(0) + "'",
            true);
    }
    for (const auto &M : Cur.members())
      if (!Base.has(M.first))
        issue(Where + "/" + M.first, "new in current file", false);
  }

  void compareEntry(const std::string &Where, const Json &Base,
                    const Json &Cur) {
    const Json *KindJ = Base.find("kind");
    std::string Kind = KindJ ? KindJ->asString() : "exact";
    if (Kind == "info")
      return;
    bool Timing = Kind == "timing";

    const Json *BT = Base.find("table"), *CT = Cur.find("table");
    if (BT && CT) {
      compareTables(Where, *BT, *CT, Timing);
      return;
    }
    const Json *BV = Base.find("values"), *CV = Cur.find("values");
    if (BV && CV) {
      compareValues(Where, *BV, *CV, Timing);
      return;
    }
    const Json *BC = Base.find("counters"), *CC = Cur.find("counters");
    if (BC && CC) {
      if (*BC != *CC)
        issue(Where, "counters differ", true);
      return;
    }
    issue(Where, "payload shape changed", true);
  }

  void compareBench(const std::string &BenchName, const Json &Base,
                    const Json &Cur) {
    const Json *BE = Base.find("entries");
    const Json *CE = Cur.find("entries");
    if (!BE || !CE) {
      if (BE != CE)
        issue(BenchName, "entries missing on one side", true);
      return;
    }
    for (size_t I = 0; I < BE->size(); ++I) {
      const Json &B = BE->at(I);
      const Json *NameJ = B.find("name");
      std::string Name = NameJ ? NameJ->asString()
                               : "entry" + std::to_string(I);
      const Json *Match = nullptr;
      for (size_t J = 0; J < CE->size(); ++J) {
        const Json *N = CE->at(J).find("name");
        if (N && N->asString() == Name) {
          Match = &CE->at(J);
          break;
        }
      }
      if (!Match) {
        issue(BenchName + "/" + Name, "missing in current file", true);
        continue;
      }
      compareEntry(BenchName + "/" + Name, B, *Match);
    }
    for (size_t J = 0; J < CE->size(); ++J) {
      const Json *N = CE->at(J).find("name");
      std::string Name = N ? N->asString() : "entry" + std::to_string(J);
      bool Known = false;
      for (size_t I = 0; I < BE->size(); ++I) {
        const Json *BN = BE->at(I).find("name");
        if (BN && BN->asString() == Name)
          Known = true;
      }
      if (!Known)
        issue(BenchName + "/" + Name, "new in current file", false);
    }
  }
};

/// Normalizes a document into a name -> per-bench-doc view. A merged
/// roll-up has a "benches" object; a single per-bench file has "bench".
std::vector<std::pair<std::string, const Json *>>
benchesOf(const Json &Doc) {
  std::vector<std::pair<std::string, const Json *>> Out;
  if (const Json *Benches = Doc.find("benches")) {
    for (const auto &M : Benches->members())
      Out.emplace_back(M.first, &M.second);
    return Out;
  }
  const Json *Name = Doc.find("bench");
  Out.emplace_back(Name ? Name->asString() : "unnamed", &Doc);
  return Out;
}

} // namespace

CompareResult sc::metrics::compareResults(const Json &Baseline,
                                          const Json &Current,
                                          const CompareOptions &Opts) {
  CompareResult Res;
  Comparer C(Opts, Res);
  auto Base = benchesOf(Baseline);
  auto Cur = benchesOf(Current);
  auto FindCur = [&](const std::string &Name) -> const Json * {
    for (const auto &P : Cur)
      if (P.first == Name)
        return P.second;
    return nullptr;
  };
  for (const auto &P : Base) {
    const Json *Match = FindCur(P.first);
    if (!Match) {
      C.issue(P.first, "bench missing in current file", true);
      continue;
    }
    C.compareBench(P.first, *P.second, *Match);
  }
  for (const auto &P : Cur) {
    bool Known = false;
    for (const auto &B : Base)
      if (B.first == P.first)
        Known = true;
    if (!Known)
      C.issue(P.first, "new bench in current file", false);
  }
  return Res;
}
