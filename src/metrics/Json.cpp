//===-- metrics/Json.cpp - JSON writer and parser -------------------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "metrics/Json.h"

#include "support/Assert.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace sc;
using namespace sc::metrics;

Json Json::boolean(bool B) {
  Json J;
  J.K = Kind::Bool;
  J.BoolVal = B;
  return J;
}

Json Json::number(int64_t V) { return numberText(std::to_string(V)); }

Json Json::number(uint64_t V) { return numberText(std::to_string(V)); }

Json Json::number(double V) {
  if (!std::isfinite(V))
    return Json::null(); // JSON has no Inf/NaN; null marks the hole
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  // Prefer the shortest spelling that round-trips.
  for (int Prec = 1; Prec <= 16; ++Prec) {
    char Short[40];
    std::snprintf(Short, sizeof(Short), "%.*g", Prec, V);
    if (std::strtod(Short, nullptr) == V)
      return numberText(Short);
  }
  return numberText(Buf);
}

Json Json::numberText(std::string Spelling) {
  Json J;
  J.K = Kind::Number;
  J.Str = std::move(Spelling);
  return J;
}

Json Json::string(std::string S) {
  Json J;
  J.K = Kind::String;
  J.Str = std::move(S);
  return J;
}

Json Json::array() {
  Json J;
  J.K = Kind::Array;
  return J;
}

Json Json::object() {
  Json J;
  J.K = Kind::Object;
  return J;
}

bool Json::asBool() const { return K == Kind::Bool && BoolVal; }

double Json::asDouble() const {
  return K == Kind::Number ? std::strtod(Str.c_str(), nullptr) : 0.0;
}

int64_t Json::asInt() const {
  return K == Kind::Number
             ? static_cast<int64_t>(std::strtoll(Str.c_str(), nullptr, 10))
             : 0;
}

const std::string &Json::asString() const {
  static const std::string Empty;
  return K == Kind::String ? Str : Empty;
}

const std::string &Json::numberSpelling() const {
  static const std::string Empty;
  return K == Kind::Number ? Str : Empty;
}

size_t Json::size() const { return Arr.size(); }

const Json &Json::at(size_t I) const {
  SC_ASSERT(K == Kind::Array && I < Arr.size(), "Json::at out of range");
  return Arr[I];
}

Json &Json::at(size_t I) {
  SC_ASSERT(K == Kind::Array && I < Arr.size(), "Json::at out of range");
  return Arr[I];
}

void Json::push(Json V) {
  SC_ASSERT(K == Kind::Array, "push on non-array");
  Arr.push_back(std::move(V));
}

void Json::set(const std::string &Name, Json V) {
  SC_ASSERT(K == Kind::Object, "set on non-object");
  for (auto &M : Obj)
    if (M.first == Name) {
      M.second = std::move(V);
      return;
    }
  Obj.emplace_back(Name, std::move(V));
}

const Json *Json::find(const std::string &Name) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &M : Obj)
    if (M.first == Name)
      return &M.second;
  return nullptr;
}

Json *Json::find(const std::string &Name) {
  return const_cast<Json *>(static_cast<const Json *>(this)->find(Name));
}

const std::vector<std::pair<std::string, Json>> &Json::members() const {
  return Obj;
}

std::string sc::metrics::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

void Json::write(std::string &Out, unsigned Indent, unsigned Depth) const {
  auto Newline = [&](unsigned D) {
    if (Indent == 0)
      return;
    Out += '\n';
    Out.append(static_cast<size_t>(Indent) * D, ' ');
  };
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolVal ? "true" : "false";
    break;
  case Kind::Number:
    Out += Str;
    break;
  case Kind::String:
    Out += '"';
    Out += jsonEscape(Str);
    Out += '"';
    break;
  case Kind::Array:
    if (Arr.empty()) {
      Out += "[]";
      break;
    }
    Out += '[';
    for (size_t I = 0; I < Arr.size(); ++I) {
      if (I)
        Out += ',';
      Newline(Depth + 1);
      Arr[I].write(Out, Indent, Depth + 1);
    }
    Newline(Depth);
    Out += ']';
    break;
  case Kind::Object:
    if (Obj.empty()) {
      Out += "{}";
      break;
    }
    Out += '{';
    for (size_t I = 0; I < Obj.size(); ++I) {
      if (I)
        Out += ',';
      Newline(Depth + 1);
      Out += '"';
      Out += jsonEscape(Obj[I].first);
      Out += Indent == 0 ? "\":" : "\": ";
      Obj[I].second.write(Out, Indent, Depth + 1);
    }
    Newline(Depth);
    Out += '}';
    break;
  }
}

std::string Json::dump(unsigned Indent) const {
  std::string Out;
  write(Out, Indent, 0);
  return Out;
}

bool sc::metrics::operator==(const Json &A, const Json &B) {
  if (A.K != B.K)
    return false;
  switch (A.K) {
  case Json::Kind::Null:
    return true;
  case Json::Kind::Bool:
    return A.BoolVal == B.BoolVal;
  case Json::Kind::Number:
  case Json::Kind::String:
    return A.Str == B.Str;
  case Json::Kind::Array:
    return A.Arr == B.Arr;
  case Json::Kind::Object:
    return A.Obj == B.Obj;
  }
  return false;
}

namespace {

/// Recursive-descent JSON parser over a byte range.
class Parser {
  const char *P;
  const char *End;
  const char *Begin;
  std::string Err;

public:
  Parser(const std::string &Text)
      : P(Text.data()), End(Text.data() + Text.size()), Begin(Text.data()) {}

  const std::string &error() const { return Err; }

  bool parseDocument(Json &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    if (P != End)
      return fail("trailing characters after document");
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    Err = Msg + " at offset " + std::to_string(P - Begin);
    return false;
  }

  void skipWs() {
    while (P != End &&
           (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }

  bool literal(const char *Lit) {
    const char *Q = P;
    for (; *Lit; ++Lit, ++Q)
      if (Q == End || *Q != *Lit)
        return false;
    P = Q;
    return true;
  }

  bool parseValue(Json &Out) {
    if (P == End)
      return fail("unexpected end of input");
    switch (*P) {
    case 'n':
      if (!literal("null"))
        return fail("bad literal");
      Out = Json::null();
      return true;
    case 't':
      if (!literal("true"))
        return fail("bad literal");
      Out = Json::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return fail("bad literal");
      Out = Json::boolean(false);
      return true;
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Json::string(std::move(S));
      return true;
    }
    case '[':
      return parseArray(Out);
    case '{':
      return parseObject(Out);
    default:
      return parseNumber(Out);
    }
  }

  bool parseString(std::string &Out) {
    ++P; // opening quote
    while (P != End && *P != '"') {
      if (*P != '\\') {
        Out += *P++;
        continue;
      }
      if (++P == End)
        return fail("unterminated escape");
      switch (*P) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (End - P < 5)
          return fail("truncated \\u escape");
        unsigned V = 0;
        for (int I = 1; I <= 4; ++I) {
          char C = P[I];
          V <<= 4;
          if (C >= '0' && C <= '9')
            V |= static_cast<unsigned>(C - '0');
          else if (C >= 'a' && C <= 'f')
            V |= static_cast<unsigned>(C - 'a' + 10);
          else if (C >= 'A' && C <= 'F')
            V |= static_cast<unsigned>(C - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        P += 4;
        // UTF-8 encode (surrogate pairs are not combined; the pipeline
        // never emits them).
        if (V < 0x80) {
          Out += static_cast<char>(V);
        } else if (V < 0x800) {
          Out += static_cast<char>(0xC0 | (V >> 6));
          Out += static_cast<char>(0x80 | (V & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (V >> 12));
          Out += static_cast<char>(0x80 | ((V >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (V & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
      ++P;
    }
    if (P == End)
      return fail("unterminated string");
    ++P; // closing quote
    return true;
  }

  bool parseNumber(Json &Out) {
    const char *Start = P;
    if (P != End && *P == '-')
      ++P;
    if (P == End || *P < '0' || *P > '9')
      return fail("bad number");
    while (P != End && *P >= '0' && *P <= '9')
      ++P;
    if (P != End && *P == '.') {
      ++P;
      if (P == End || *P < '0' || *P > '9')
        return fail("bad fraction");
      while (P != End && *P >= '0' && *P <= '9')
        ++P;
    }
    if (P != End && (*P == 'e' || *P == 'E')) {
      ++P;
      if (P != End && (*P == '+' || *P == '-'))
        ++P;
      if (P == End || *P < '0' || *P > '9')
        return fail("bad exponent");
      while (P != End && *P >= '0' && *P <= '9')
        ++P;
    }
    Out = Json::numberText(std::string(Start, P));
    return true;
  }

  bool parseArray(Json &Out) {
    ++P; // '['
    Out = Json::array();
    skipWs();
    if (P != End && *P == ']') {
      ++P;
      return true;
    }
    for (;;) {
      Json V;
      skipWs();
      if (!parseValue(V))
        return false;
      Out.push(std::move(V));
      skipWs();
      if (P == End)
        return fail("unterminated array");
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == ']') {
        ++P;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseObject(Json &Out) {
    ++P; // '{'
    Out = Json::object();
    skipWs();
    if (P != End && *P == '}') {
      ++P;
      return true;
    }
    for (;;) {
      skipWs();
      if (P == End || *P != '"')
        return fail("expected member name");
      std::string Name;
      if (!parseString(Name))
        return false;
      skipWs();
      if (P == End || *P != ':')
        return fail("expected ':'");
      ++P;
      skipWs();
      Json V;
      if (!parseValue(V))
        return false;
      Out.set(Name, std::move(V));
      skipWs();
      if (P == End)
        return fail("unterminated object");
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == '}') {
        ++P;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

} // namespace

bool Json::parse(const std::string &Text, Json &Out, std::string *Err) {
  Parser Ps(Text);
  if (Ps.parseDocument(Out))
    return true;
  if (Err)
    *Err = Ps.error();
  return false;
}
