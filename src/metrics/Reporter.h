//===-- metrics/Reporter.h - Structured bench-result emission --*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MetricsReporter: the shared JSON emission path of every bench/ binary.
/// Each bench keeps printing its human-readable table to stdout and, when
/// invoked with `--json <path>`, additionally records the same data as a
/// structured document that scripts/bench.sh rolls up into
/// BENCH_results.json.
///
/// Per-bench document schema ("sc-bench-v1"):
///
///   {
///     "schema":  "sc-bench-v1",
///     "bench":   "<binary name>",
///     "env":     { compiler, cxx_flags, build_type, git_rev, cpu, ... },
///     "entries": [
///       { "name": "...", "kind": "exact"|"timing"|"counters"|"info",
///         "table": [["hdr", ...], ["cell", ...]]   // or
///         "values": { "key": <number|string> }     // or
///         "counters": { ... }                      // countersToJson
///       }, ...
///     ]
///   }
///
/// "kind" drives the comparator: "exact" entries (state counts, cost
/// models, code sizes) must match a baseline bit-for-bit; "timing"
/// entries compare numerically within a relative threshold; "info"
/// entries are never compared.
///
//===----------------------------------------------------------------------===//

#ifndef SC_METRICS_REPORTER_H
#define SC_METRICS_REPORTER_H

#include "metrics/Json.h"
#include "metrics/Timing.h"

#include <string>

namespace sc {
class Table;
} // namespace sc

namespace sc::metrics {

struct Counters;

/// How the comparator treats an entry.
enum class EntryKind {
  Exact,    ///< must match a baseline exactly (counts, cost models)
  Timing,   ///< numeric cells compared within a relative threshold
  Counters, ///< SC_STATS counters; compared exactly when both sides have it
  Info,     ///< descriptive only; never compared
};

const char *entryKindName(EntryKind K);

/// Collects a bench binary's results and writes the per-bench JSON
/// document. Creating one is free; nothing is written unless `--json`
/// was given (or setPath called).
class MetricsReporter {
public:
  explicit MetricsReporter(std::string BenchName);

  /// Strips `--json <path>` / `--json=<path>` from the argument vector
  /// (so it can run before e.g. benchmark::Initialize) and remembers the
  /// path. Unknown arguments are left in place.
  void parseArgs(int &Argc, char **Argv);

  bool enabled() const { return !Path.empty(); }
  void setPath(std::string P) { Path = std::move(P); }
  const std::string &path() const { return Path; }

  /// Records a printed Table verbatim (every cell as a string).
  void addTable(const std::string &Name, const Table &T, EntryKind K);

  /// Records a flat key/value object.
  void addValues(const std::string &Name, EntryKind K, Json Values);

  /// Records a timeRuns result (min + median, nanoseconds).
  void addTiming(const std::string &Name, const TimingStats &S);

  /// Records engine counters (no-op object when SC_STATS is off).
  void addCounters(const std::string &Name, const Counters &C);

  /// The full per-bench document.
  Json document() const;

  /// Writes document() to the configured path. Returns true when no path
  /// is configured (nothing to do) or the write succeeded; prints to
  /// stderr and returns false on I/O failure.
  bool write() const;

private:
  std::string BenchName;
  std::string Path;
  Json Entries = Json::array();
};

/// Writes \p Doc pretty-printed to \p Path ("-" means stdout).
bool writeJsonFile(const std::string &Path, const Json &Doc);

/// Reads and parses a JSON file; returns false with \p Err set on
/// open/parse failure.
bool readJsonFile(const std::string &Path, Json &Out, std::string *Err);

} // namespace sc::metrics

#endif // SC_METRICS_REPORTER_H
