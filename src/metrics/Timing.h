//===-- metrics/Timing.h - Warmed-up repetition timing ---------*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled timing helper for the non-Google-Benchmark benches
/// (static_codegen_ablation, superinst_extension): runs warmup passes
/// first, then times N repetitions and reports both the minimum and the
/// median, so cold-cache noise neither skews the number (warmup) nor
/// hides run-to-run variance (median alongside min).
///
//===----------------------------------------------------------------------===//

#ifndef SC_METRICS_TIMING_H
#define SC_METRICS_TIMING_H

#include <algorithm>
#include <chrono>
#include <vector>

namespace sc::metrics {

/// Result of timeRuns: nanoseconds per repetition.
struct TimingStats {
  double MinNs = 0;
  double MedianNs = 0;
  int Reps = 0;
};

/// Median of \p Samples (sorted in place).
inline double medianOf(std::vector<double> &Samples) {
  if (Samples.empty())
    return 0;
  std::sort(Samples.begin(), Samples.end());
  size_t N = Samples.size();
  return N % 2 ? Samples[N / 2]
               : (Samples[N / 2 - 1] + Samples[N / 2]) / 2.0;
}

/// Runs \p Fn \p Warmup times unmeasured, then \p Reps measured times.
template <typename F>
TimingStats timeRuns(F &&Fn, int Reps = 7, int Warmup = 2) {
  using Clock = std::chrono::steady_clock;
  for (int I = 0; I < Warmup; ++I)
    Fn();
  std::vector<double> Samples;
  Samples.reserve(static_cast<size_t>(Reps));
  for (int I = 0; I < Reps; ++I) {
    auto T0 = Clock::now();
    Fn();
    auto T1 = Clock::now();
    Samples.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
            .count()));
  }
  TimingStats S;
  S.Reps = Reps;
  S.MinNs = *std::min_element(Samples.begin(), Samples.end());
  S.MedianNs = medianOf(Samples);
  return S;
}

/// True when SC_BENCH_SMOKE is set in the environment: benches shrink
/// their repetition counts so CI's perf-smoke job finishes quickly.
bool benchSmokeMode();

/// \p Full normally, a small constant in smoke mode.
int smokeAdjustedReps(int Full);

} // namespace sc::metrics

#endif // SC_METRICS_TIMING_H
