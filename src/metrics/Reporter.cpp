//===-- metrics/Reporter.cpp - Structured bench-result emission -----------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "metrics/Reporter.h"

#include "metrics/Counters.h"
#include "metrics/Env.h"
#include "support/Table.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace sc;
using namespace sc::metrics;

const char *sc::metrics::entryKindName(EntryKind K) {
  switch (K) {
  case EntryKind::Exact:
    return "exact";
  case EntryKind::Timing:
    return "timing";
  case EntryKind::Counters:
    return "counters";
  case EntryKind::Info:
    return "info";
  }
  return "info";
}

MetricsReporter::MetricsReporter(std::string Name)
    : BenchName(std::move(Name)) {}

void MetricsReporter::parseArgs(int &Argc, char **Argv) {
  int Out = 1;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc) {
      Path = Argv[++I];
    } else if (!std::strncmp(Argv[I], "--json=", 7)) {
      Path = Argv[I] + 7;
    } else {
      Argv[Out++] = Argv[I];
    }
  }
  Argc = Out;
  Argv[Argc] = nullptr;
}

static Json entryHeader(const std::string &Name, EntryKind K) {
  Json E = Json::object();
  E.set("name", Json::string(Name));
  E.set("kind", Json::string(entryKindName(K)));
  return E;
}

void MetricsReporter::addTable(const std::string &Name, const Table &T,
                               EntryKind K) {
  Json E = entryHeader(Name, K);
  Json Rows = Json::array();
  for (const auto &Row : T.rows()) {
    Json R = Json::array();
    for (const auto &Cell : Row)
      R.push(Json::string(Cell));
    Rows.push(std::move(R));
  }
  E.set("table", std::move(Rows));
  Entries.push(std::move(E));
}

void MetricsReporter::addValues(const std::string &Name, EntryKind K,
                                Json Values) {
  Json E = entryHeader(Name, K);
  E.set("values", std::move(Values));
  Entries.push(std::move(E));
}

void MetricsReporter::addTiming(const std::string &Name,
                                const TimingStats &S) {
  Json V = Json::object();
  V.set("min_ns", Json::number(S.MinNs));
  V.set("median_ns", Json::number(S.MedianNs));
  V.set("reps", Json::number(static_cast<int64_t>(S.Reps)));
  addValues(Name, EntryKind::Timing, std::move(V));
}

void MetricsReporter::addCounters(const std::string &Name,
                                  const Counters &C) {
  Json E = entryHeader(Name, EntryKind::Counters);
  E.set("counters", countersToJson(C));
  Entries.push(std::move(E));
}

Json MetricsReporter::document() const {
  Json Doc = Json::object();
  Doc.set("schema", Json::string("sc-bench-v1"));
  Doc.set("bench", Json::string(BenchName));
  Doc.set("env", captureEnv());
  Doc.set("entries", Entries);
  return Doc;
}

bool MetricsReporter::write() const {
  if (Path.empty())
    return true;
  if (!writeJsonFile(Path, document())) {
    std::fprintf(stderr, "%s: cannot write %s\n", BenchName.c_str(),
                 Path.c_str());
    return false;
  }
  return true;
}

bool sc::metrics::writeJsonFile(const std::string &Path, const Json &Doc) {
  std::string Text = Doc.dump(2);
  Text += '\n';
  if (Path == "-") {
    std::fwrite(Text.data(), 1, Text.size(), stdout);
    return true;
  }
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out.write(Text.data(), static_cast<std::streamsize>(Text.size()));
  return static_cast<bool>(Out);
}

bool sc::metrics::readJsonFile(const std::string &Path, Json &Out,
                               std::string *Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    if (Err)
      *Err = "cannot open " + Path;
    return false;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string ParseErr;
  if (!Json::parse(Buf.str(), Out, &ParseErr)) {
    if (Err)
      *Err = Path + ": " + ParseErr;
    return false;
  }
  return true;
}
