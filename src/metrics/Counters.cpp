//===-- metrics/Counters.cpp - Engine execution counters ------------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "metrics/Counters.h"

#include "metrics/Json.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace sc;
using namespace sc::metrics;

uint64_t Counters::totalDispatch() const {
  uint64_t Sum = 0;
  for (uint64_t D : Dispatch)
    Sum += D;
  return Sum;
}

bool Counters::allZero() const { return *this == Counters(); }

Counters &Counters::operator+=(const Counters &O) {
  for (unsigned I = 0; I < vm::NumOpcodes; ++I)
    Dispatch[I] += O.Dispatch[I];
  for (unsigned I = 0; I < OccupancyStates; ++I)
    Occupancy[I] += O.Occupancy[I];
  CacheOverflows += O.CacheOverflows;
  CacheUnderflows += O.CacheUnderflows;
  ReconcileLoads += O.ReconcileLoads;
  ReconcileStores += O.ReconcileStores;
  ReconcileMoves += O.ReconcileMoves;
  for (unsigned I = 0; I < vm::NumRunStatuses; ++I)
    Traps[I] += O.Traps[I];
  return *this;
}

bool sc::metrics::operator==(const Counters &A, const Counters &B) {
  for (unsigned I = 0; I < vm::NumOpcodes; ++I)
    if (A.Dispatch[I] != B.Dispatch[I])
      return false;
  for (unsigned I = 0; I < OccupancyStates; ++I)
    if (A.Occupancy[I] != B.Occupancy[I])
      return false;
  for (unsigned I = 0; I < vm::NumRunStatuses; ++I)
    if (A.Traps[I] != B.Traps[I])
      return false;
  return A.CacheOverflows == B.CacheOverflows &&
         A.CacheUnderflows == B.CacheUnderflows &&
         A.ReconcileLoads == B.ReconcileLoads &&
         A.ReconcileStores == B.ReconcileStores &&
         A.ReconcileMoves == B.ReconcileMoves;
}

Json sc::metrics::prepareCountersToJson(const PrepareCounters &C) {
  Json Obj = Json::object();
  Obj.set("hits", Json::number(C.Hits));
  Obj.set("misses", Json::number(C.Misses));
  Obj.set("invalidations", Json::number(C.Invalidations));
  Obj.set("translations", Json::number(C.Translations));
  Obj.set("identity_hits", Json::number(C.IdentityHits));
  Obj.set("identity_misses", Json::number(C.IdentityMisses));
  return Obj;
}

Json sc::metrics::sessionCountersToJson(const SessionCounters &C) {
  Json Obj = Json::object();
  Obj.set("slices", Json::number(C.Slices));
  Obj.set("steps_executed", Json::number(C.StepsExecuted));
  Obj.set("fuel_exhausted", Json::number(C.FuelExhausted));
  Obj.set("deadline_hits", Json::number(C.DeadlineHits));
  Obj.set("cancellations", Json::number(C.Cancellations));
  Obj.set("fallback_replays", Json::number(C.FallbackReplays));
  Obj.set("faults_confirmed", Json::number(C.FaultsConfirmed));
  Obj.set("faults_refuted", Json::number(C.FaultsRefuted));
  Obj.set("replays_inconclusive", Json::number(C.ReplaysInconclusive));
  Obj.set("quarantines", Json::number(C.Quarantines));
  Obj.set("quarantine_rejections", Json::number(C.QuarantineRejections));
  Obj.set("checkpoints", Json::number(C.Checkpoints));
  Obj.set("restores", Json::number(C.Restores));
  Obj.set("leader_fallbacks", Json::number(C.LeaderFallbacks));
  Obj.set("migrations", Json::number(C.Migrations));
  return Obj;
}

std::string sc::metrics::formatSessionCounters(const SessionCounters &C) {
  std::string Out;
  char Buf[160];
  auto Line = [&](const char *Fmt, auto... Args) {
    std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    Out += Buf;
  };
  Line("slices: %llu (steps: %llu)\n",
       static_cast<unsigned long long>(C.Slices),
       static_cast<unsigned long long>(C.StepsExecuted));
  Line("stops: fuel %llu, deadline %llu, cancel %llu\n",
       static_cast<unsigned long long>(C.FuelExhausted),
       static_cast<unsigned long long>(C.DeadlineHits),
       static_cast<unsigned long long>(C.Cancellations));
  Line("fallback replays: %llu (confirmed %llu, refuted %llu, "
       "inconclusive %llu)\n",
       static_cast<unsigned long long>(C.FallbackReplays),
       static_cast<unsigned long long>(C.FaultsConfirmed),
       static_cast<unsigned long long>(C.FaultsRefuted),
       static_cast<unsigned long long>(C.ReplaysInconclusive));
  Line("quarantines: %llu (runs rejected: %llu)\n",
       static_cast<unsigned long long>(C.Quarantines),
       static_cast<unsigned long long>(C.QuarantineRejections));
  Line("checkpoints: %llu (restores: %llu, leader fallbacks: %llu)\n",
       static_cast<unsigned long long>(C.Checkpoints),
       static_cast<unsigned long long>(C.Restores),
       static_cast<unsigned long long>(C.LeaderFallbacks));
  if (C.Migrations)
    Line("migrations: %llu\n", static_cast<unsigned long long>(C.Migrations));
  return Out;
}

Json sc::metrics::tierCountersToJson(const TierCounters &C) {
  Json Obj = Json::object();
  Obj.set("promotions", Json::number(C.Promotions));
  Obj.set("demotions", Json::number(C.Demotions));
  Obj.set("prepare_requests", Json::number(C.PrepareRequests));
  Obj.set("prepares", Json::number(C.Prepares));
  Obj.set("prepare_ns", Json::number(C.PrepareNs));
  return Obj;
}

std::string sc::metrics::formatTierCounters(const TierCounters &C) {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "tier: %llu promotions, %llu demotions, "
                "%llu/%llu prepares (%.3f ms)\n",
                static_cast<unsigned long long>(C.Promotions),
                static_cast<unsigned long long>(C.Demotions),
                static_cast<unsigned long long>(C.Prepares),
                static_cast<unsigned long long>(C.PrepareRequests),
                static_cast<double>(C.PrepareNs) / 1e6);
  return Buf;
}

Json sc::metrics::countersToJson(const Counters &C) {
  Json Obj = Json::object();
  Obj.set("total_dispatch", Json::number(C.totalDispatch()));

  Json PerOp = Json::object();
  for (unsigned I = 0; I < vm::NumOpcodes; ++I)
    if (C.Dispatch[I])
      PerOp.set(vm::mnemonic(static_cast<vm::Opcode>(I)),
                Json::number(C.Dispatch[I]));
  Obj.set("dispatch", std::move(PerOp));

  Json Occ = Json::array();
  for (unsigned I = 0; I < OccupancyStates; ++I)
    Occ.push(Json::number(C.Occupancy[I]));
  Obj.set("occupancy", std::move(Occ));

  Obj.set("cache_overflows", Json::number(C.CacheOverflows));
  Obj.set("cache_underflows", Json::number(C.CacheUnderflows));
  Obj.set("reconcile_loads", Json::number(C.ReconcileLoads));
  Obj.set("reconcile_stores", Json::number(C.ReconcileStores));
  Obj.set("reconcile_moves", Json::number(C.ReconcileMoves));

  Json Traps = Json::object();
  for (unsigned I = 0; I < vm::NumRunStatuses; ++I)
    if (C.Traps[I])
      Traps.set(vm::runStatusName(static_cast<vm::RunStatus>(I)),
                Json::number(C.Traps[I]));
  Obj.set("traps", std::move(Traps));
  return Obj;
}

std::string sc::metrics::formatCounters(const Counters &C) {
  std::string Out;
  char Buf[160];
  auto Line = [&](const char *Fmt, auto... Args) {
    std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    Out += Buf;
  };

  Line("dispatches: %llu\n",
       static_cast<unsigned long long>(C.totalDispatch()));

  // Per-opcode counts, most frequent first.
  std::vector<unsigned> Idx;
  for (unsigned I = 0; I < vm::NumOpcodes; ++I)
    if (C.Dispatch[I])
      Idx.push_back(I);
  std::sort(Idx.begin(), Idx.end(), [&](unsigned A, unsigned B) {
    if (C.Dispatch[A] != C.Dispatch[B])
      return C.Dispatch[A] > C.Dispatch[B];
    return A < B;
  });
  for (unsigned I : Idx)
    Line("  %-8s %llu\n", vm::mnemonic(static_cast<vm::Opcode>(I)),
         static_cast<unsigned long long>(C.Dispatch[I]));

  Line("occupancy (cached depth 0..%u):", OccupancyStates - 1);
  for (unsigned I = 0; I < OccupancyStates; ++I)
    Line(" %llu", static_cast<unsigned long long>(C.Occupancy[I]));
  Out += '\n';
  Line("cache overflows: %llu, underflows: %llu\n",
       static_cast<unsigned long long>(C.CacheOverflows),
       static_cast<unsigned long long>(C.CacheUnderflows));
  Line("reconcile loads/stores/moves: %llu/%llu/%llu\n",
       static_cast<unsigned long long>(C.ReconcileLoads),
       static_cast<unsigned long long>(C.ReconcileStores),
       static_cast<unsigned long long>(C.ReconcileMoves));
  for (unsigned I = 0; I < vm::NumRunStatuses; ++I)
    if (C.Traps[I])
      Line("ended %s: %llu\n",
           vm::runStatusName(static_cast<vm::RunStatus>(I)),
           static_cast<unsigned long long>(C.Traps[I]));
  return Out;
}
