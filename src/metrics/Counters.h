//===-- metrics/Counters.h - Engine execution counters ---------*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-run execution counters every engine and trace simulator can fill:
/// per-opcode dispatch counts, cache overflow/underflow events, a
/// cache-state occupancy histogram, reconcile traffic (spills, fills and
/// register moves), and trap counts.
///
/// Collection is gated behind the SC_STATS compile-time flag; with it off
/// the SC_IF_STATS(...) instrumentation sites compile to nothing, so the
/// hot dispatch loops are untouched. An engine only records into
/// ExecContext::Stats when the caller installed a Counters object there,
/// so even stats-enabled builds pay one predictable branch per site.
///
//===----------------------------------------------------------------------===//

#ifndef SC_METRICS_COUNTERS_H
#define SC_METRICS_COUNTERS_H

#include "vm/Opcode.h"
#include "vm/RunResult.h"

#include <cstdint>
#include <string>

namespace sc::metrics {

class Json;

/// True when the build collects execution counters (SC_STATS).
constexpr bool statsEnabled() {
#ifdef SC_STATS
  return true;
#else
  return false;
#endif
}

/// Wraps an instrumentation site. The arguments are compiled only when
/// SC_STATS is on; otherwise the site disappears entirely.
#ifdef SC_STATS
#define SC_IF_STATS(...)                                                       \
  do {                                                                         \
    __VA_ARGS__;                                                               \
  } while (0)
#else
#define SC_IF_STATS(...)                                                       \
  do {                                                                         \
  } while (0)
#endif

/// Number of cache-occupancy buckets (cached depths 0..3; the project's
/// caches keep at most two items in registers, bucket 3 is headroom).
inline constexpr unsigned OccupancyStates = 4;

/// Execution counters for one engine or simulator run.
struct Counters {
  /// Dispatches per opcode, indexed by static_cast<unsigned>(Opcode).
  uint64_t Dispatch[vm::NumOpcodes] = {};
  /// Dispatches observed with 0..3 stack items cached in registers.
  /// Non-caching engines land everything in bucket 0.
  uint64_t Occupancy[OccupancyStates] = {};
  /// Dispatches whose stack effect would exceed the cache capacity
  /// (a spill is needed before or after the instruction).
  uint64_t CacheOverflows = 0;
  /// Dispatches needing more cached items than the cache holds
  /// (a fill from memory is needed).
  uint64_t CacheUnderflows = 0;
  /// Reconcile traffic: cached items written back to the memory stack.
  uint64_t ReconcileLoads = 0;  ///< memory-stack cells loaded into registers
  uint64_t ReconcileStores = 0; ///< register items spilled to the memory stack
  uint64_t ReconcileMoves = 0;  ///< register-to-register shuffles
  /// Run terminations per RunStatus (Halted counts as a "trap" bucket
  /// too, so the sum equals the number of runs recorded).
  uint64_t Traps[vm::NumRunStatuses] = {};

  void reset() { *this = Counters(); }

  /// Sum of Dispatch over all opcodes.
  uint64_t totalDispatch() const;

  /// True when every field is zero (what an SC_STATS=off run leaves).
  bool allZero() const;

  /// Field-for-field accumulation (for aggregating across runs).
  Counters &operator+=(const Counters &O);

  friend bool operator==(const Counters &A, const Counters &B);
  friend bool operator!=(const Counters &A, const Counters &B) {
    return !(A == B);
  }
};

bool operator==(const Counters &A, const Counters &B);

/// Records one dispatch in a non-caching engine (occupancy bucket 0).
inline void noteDispatch(Counters &C, vm::Opcode Op) {
  ++C.Dispatch[static_cast<unsigned>(Op)];
  ++C.Occupancy[0];
}

/// Records one dispatch in a caching engine with \p CachedDepth items in
/// registers out of a cache of \p Capacity registers. Derives cache
/// underflow (instruction needs more cached items than present) and
/// overflow (result would exceed capacity) from the opcode's static
/// stack effect.
inline void noteCachedDispatch(Counters &C, vm::Opcode Op,
                               unsigned CachedDepth, unsigned Capacity) {
  ++C.Dispatch[static_cast<unsigned>(Op)];
  ++C.Occupancy[CachedDepth < OccupancyStates ? CachedDepth
                                              : OccupancyStates - 1];
  const vm::StackEffect E = vm::opInfo(Op).Data;
  if (E.In > CachedDepth)
    ++C.CacheUnderflows;
  else if (CachedDepth - E.In + E.Out > Capacity)
    ++C.CacheOverflows;
}

/// Records the way a run ended.
inline void noteTrap(Counters &C, vm::RunStatus S) {
  ++C.Traps[static_cast<unsigned>(S)];
}

/// Translation-cache counters for the prepare subsystem (src/prepare):
/// how often a (Code, engine) translation was served from cache versus
/// built, plus version-stamp invalidations and the number of stream
/// translations actually performed. Unlike Counters these are always
/// maintained — they tick once per prepare/lookup, not per instruction.
struct PrepareCounters {
  uint64_t Hits = 0;          ///< getOrPrepare served without translating
  uint64_t Misses = 0;        ///< getOrPrepare that had to prepare
  uint64_t Invalidations = 0; ///< entries dropped because Code::version moved
  uint64_t Translations = 0;  ///< prepared streams actually built
  /// Content-identity lookups (findByIdentity, the restore/tier path)
  /// are counted separately from the getOrPrepare pair above, so each
  /// pair independently satisfies hits + misses == lookups once writers
  /// quiesce. (They used to share Hits with no miss tick at all, which
  /// made the aggregate unreconcilable under mixed lookups.)
  uint64_t IdentityHits = 0;
  uint64_t IdentityMisses = 0;

  PrepareCounters &operator+=(const PrepareCounters &O) {
    Hits += O.Hits;
    Misses += O.Misses;
    Invalidations += O.Invalidations;
    Translations += O.Translations;
    IdentityHits += O.IdentityHits;
    IdentityMisses += O.IdentityMisses;
    return *this;
  }
};

/// Serializes \p C as a flat JSON object (hits/misses/invalidations/
/// translations).
Json prepareCountersToJson(const PrepareCounters &C);

/// Supervision counters for the session layer (src/session): one tick
/// per slice-boundary decision a VmSession makes. Like PrepareCounters
/// these are always maintained — they are far off the per-instruction
/// hot paths, so they cost nothing SC_STATS would save.
struct SessionCounters {
  uint64_t Slices = 0;        ///< engine entries (including replays)
  uint64_t StepsExecuted = 0; ///< guest steps across all slices
  uint64_t FuelExhausted = 0; ///< runs stopped by the fuel budget
  uint64_t DeadlineHits = 0;  ///< runs stopped by the wall-clock deadline
  uint64_t Cancellations = 0; ///< runs stopped by cancel()
  uint64_t FallbackReplays = 0;      ///< fault replays under the reference engine
  uint64_t FaultsConfirmed = 0;      ///< replays that reproduced the fault
  uint64_t FaultsRefuted = 0;        ///< replays that disagreed with the fault
  uint64_t ReplaysInconclusive = 0;  ///< replays that hit the replay budget
  uint64_t Quarantines = 0;          ///< programs quarantined by this session
  uint64_t QuarantineRejections = 0; ///< runs refused because of quarantine
  uint64_t Checkpoints = 0;     ///< durable snapshots written by policy
  uint64_t Restores = 0;        ///< successful restoreFrom() calls
  uint64_t LeaderFallbacks = 0; ///< slices routed to the reference engine
                                ///< because a restored PC was not a safe
                                ///< entry point of a static translation
  uint64_t Migrations = 0; ///< migrateTo() engine swaps at slice boundaries

  SessionCounters &operator+=(const SessionCounters &O) {
    Slices += O.Slices;
    StepsExecuted += O.StepsExecuted;
    FuelExhausted += O.FuelExhausted;
    DeadlineHits += O.DeadlineHits;
    Cancellations += O.Cancellations;
    FallbackReplays += O.FallbackReplays;
    FaultsConfirmed += O.FaultsConfirmed;
    FaultsRefuted += O.FaultsRefuted;
    ReplaysInconclusive += O.ReplaysInconclusive;
    Quarantines += O.Quarantines;
    QuarantineRejections += O.QuarantineRejections;
    Checkpoints += O.Checkpoints;
    Restores += O.Restores;
    LeaderFallbacks += O.LeaderFallbacks;
    Migrations += O.Migrations;
    return *this;
  }
};

/// Serializes \p C as a flat JSON object (slices/steps/fuel-exhausted/...).
Json sessionCountersToJson(const SessionCounters &C);

/// Human-readable multi-line rendering (forth_run session summary).
std::string formatSessionCounters(const SessionCounters &C);

/// Promotion-ladder traffic for one adaptive tier controller
/// (src/tier). Always maintained, like PrepareCounters: one tick per
/// tiering decision, far off the per-instruction hot paths.
struct TierCounters {
  uint64_t Promotions = 0; ///< hotter artifacts handed to a caller
  uint64_t Demotions = 0;  ///< identities pinned cold (confirmed faults)
  uint64_t PrepareRequests = 0; ///< re-preparations asked for
  uint64_t Prepares = 0;        ///< re-preparations completed
  uint64_t PrepareNs = 0;       ///< wall-clock ns spent re-preparing

  TierCounters &operator+=(const TierCounters &O) {
    Promotions += O.Promotions;
    Demotions += O.Demotions;
    PrepareRequests += O.PrepareRequests;
    Prepares += O.Prepares;
    PrepareNs += O.PrepareNs;
    return *this;
  }
};

/// Serializes \p C as a flat JSON object (promotions/demotions/...).
Json tierCountersToJson(const TierCounters &C);

/// Human-readable one-line rendering (forth_run --adaptive summary).
std::string formatTierCounters(const TierCounters &C);

/// Serializes \p C as a JSON object: total and per-opcode (mnemonic-keyed,
/// nonzero only) dispatch counts, occupancy, cache events, reconcile
/// traffic and traps.
Json countersToJson(const Counters &C);

/// Human-readable multi-line rendering (forth_run --stats).
std::string formatCounters(const Counters &C);

} // namespace sc::metrics

#endif // SC_METRICS_COUNTERS_H
