//===-- harness/FaultInject.h - Systematic fault injection -----*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault-injection campaigns over every engine in the
/// project. Three injection axes:
///
///   - sweepStepLimit: force RunStatus::StepLimit at every execution
///     point of a program and require all stream engines to report an
///     identical machine state (PC, opcode, depths) at each point.
///   - shrinkCapacities: run under every stack capacity below the
///     program's true peak (and every interesting data-space limit) to
///     force each overflow / BadMemAccess class, again requiring
///     identical FaultInfo across engines.
///   - mutateAndCompare: point-mutate verified bytecode, keep mutants
///     that still pass Code::verify (the oracle), and require identical
///     outcomes across all engines.
///
/// The comparator is a pure function over observations so tests can
/// tamper with one observation and prove a desynced engine is caught.
///
//===----------------------------------------------------------------------===//

#ifndef SC_HARNESS_FAULTINJECT_H
#define SC_HARNESS_FAULTINJECT_H

#include "forth/Forth.h"
#include "vm/RunResult.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sc::harness {

/// Engines under differential test, in reference order (Switch is the
/// reference implementation).
enum class EngineId : uint8_t {
  Switch,
  Threaded,
  CallThreaded,
  ThreadedTos,
  Dynamic3,
  Model,
  StaticGreedy,
  StaticOptimal,
};
inline constexpr unsigned NumEngines = 8;

const char *engineName(EngineId E);

/// Static engines execute transformed code: step counts, return-stack
/// contents (specialized return addresses) and StepLimit stop points
/// legitimately differ from the stream engines, so the comparator masks
/// those fields for them (see docs/TRAPS.md).
inline bool isStaticEngine(EngineId E) {
  return E == EngineId::StaticGreedy || E == EngineId::StaticOptimal;
}

/// Injectable resource limits for one observed run.
struct RunLimits {
  unsigned DsCapacity = vm::ExecContext::StackCells;
  unsigned RsCapacity = vm::ExecContext::StackCells;
  uint64_t MaxSteps = UINT64_MAX;
  /// Accessible data-space limit in bytes (Vm::setAccessibleLimit);
  /// SIZE_MAX leaves the machine's full data space addressable.
  size_t DataSpaceLimit = static_cast<size_t>(-1);
};

/// Everything observable about one engine run.
struct EngineObservation {
  vm::RunOutcome Outcome;
  std::vector<vm::Cell> DS; ///< final data stack, bottom first
  std::vector<vm::Cell> RS; ///< final return stack, bottom first
  std::string Out;          ///< everything the program printed
  unsigned DsHighWater = 0; ///< sampled watermark (lower bound on peak)
  unsigned RsHighWater = 0;
};

/// Runs instruction \p Entry of \p Prog under engine \p E against a copy
/// of \p Sys's machine state, with \p Limits applied.
EngineObservation observeEngine(const forth::System &Sys,
                                const vm::Code &Prog, uint32_t Entry,
                                EngineId E, const RunLimits &Limits = {});

/// Pure comparator: empty string when \p Got (produced by \p GotId) is
/// consistent with the reference observation \p Ref, else a readable
/// divergence description. Static engines are compared with step counts,
/// return-stack values and StepLimit stop points masked.
std::string compareObservations(const EngineObservation &Ref,
                                const EngineObservation &Got, EngineId GotId);

/// Renders an observation for divergence messages.
std::string describeObservation(const EngineObservation &O);

/// Aggregate result of one injection campaign.
struct InjectReport {
  uint64_t Points = 0;         ///< injection points exercised
  uint64_t Faults = 0;         ///< reference runs that ended in a trap
  uint64_t Mismatches = 0;     ///< comparator failures
  std::string FirstDivergence; ///< first failure, for the test log
  bool ok() const { return Mismatches == 0; }
};

/// Step-limit sweep: runs \p Word to completion once under \p Limits,
/// then replays it with MaxSteps = 0..completion, requiring all six
/// stream engines to agree on the full outcome (including the resume PC
/// and trap-time depths) at every point. Static engines are excluded:
/// their step counts are not comparable.
InjectReport sweepStepLimit(const forth::System &Sys, const std::string &Word,
                            const RunLimits &Limits = {});

/// Capacity shrink: determines the true data/return stack peaks of
/// \p Word by bisection, then replays it at every capacity below each
/// peak (forcing StackOverflow / RStackOverflow at the deepest point)
/// and at data-space limits below the program's reach (forcing
/// BadMemAccess), requiring identical FaultInfo everywhere.
/// \p IncludeStatic adds the two static engines; callers enable it only
/// for programs whose overflow point is not deferrable by manipulation
/// absorption (e.g. literal pushes - see docs/TRAPS.md).
InjectReport shrinkCapacities(const forth::System &Sys,
                              const std::string &Word,
                              const RunLimits &Limits = {},
                              bool IncludeStatic = false);

/// Mutation fuzz: applies \p Rounds random point mutations to the
/// program's instruction stream (seeded by \p Seed); mutants that still
/// pass Code::verify are run across all engines, requiring identical
/// outcomes (static engines are skipped for mutants that hit the step
/// budget). A default budget of 100k steps applies when \p Limits leaves
/// MaxSteps unlimited, because verified mutants may still diverge.
InjectReport mutateAndCompare(const forth::System &Sys,
                              const std::string &Word, uint64_t Rounds,
                              uint64_t Seed, const RunLimits &Limits = {});

/// Exact data-stack peak of \p Word by capacity bisection: the smallest
/// DsCapacity under which the run still reproduces the unconstrained
/// outcome. Complements ExecContext::DsHighWater, which is only sampled
/// at run boundaries and traps.
unsigned measureDsHighWater(const forth::System &Sys, const std::string &Word,
                            const RunLimits &Limits = {});

} // namespace sc::harness

#endif // SC_HARNESS_FAULTINJECT_H
