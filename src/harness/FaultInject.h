//===-- harness/FaultInject.h - Systematic fault injection -----*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault-injection campaigns over every engine in the
/// project. Four injection axes:
///
///   - sweepStepLimit: force RunStatus::StepLimit at every execution
///     point of a program and require all stream engines to report an
///     identical machine state (PC, opcode, depths) at each point.
///   - shrinkCapacities: run under every stack capacity below the
///     program's true peak (and every interesting data-space limit) to
///     force each overflow / BadMemAccess class, again requiring
///     identical FaultInfo across engines.
///   - mutateAndCompare: point-mutate verified bytecode, keep mutants
///     that still pass Code::verify (the oracle), and require identical
///     outcomes across all engines.
///   - sweepSliceBoundaries / sweepSlicedFaults: run preempted — the
///     step budget expires every few steps and execution resumes at the
///     recorded fault PC, possibly on a different engine — and require
///     the sliced run to be observationally identical to one-shot
///     execution (the resume contract of docs/TRAPS.md).
///
/// The comparator is a pure function over observations so tests can
/// tamper with one observation and prove a desynced engine is caught.
///
//===----------------------------------------------------------------------===//

#ifndef SC_HARNESS_FAULTINJECT_H
#define SC_HARNESS_FAULTINJECT_H

#include "dispatch/EngineRegistry.h"
#include "forth/Forth.h"
#include "snapshot/Snapshot.h"
#include "vm/RunResult.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sc::harness {

/// Engines under differential test — the canonical registry enumeration
/// (Switch is the reference implementation the comparator trusts).
using EngineId = engine::EngineId;
inline constexpr unsigned NumEngines = engine::NumEngineIds;

// Re-exported (not wrapped): argument-dependent lookup on EngineId finds
// the engine:: originals anyway, and a wrapper would make unqualified
// calls ambiguous.
using engine::engineName;

/// Static engines execute transformed code: step counts (micros and
/// removed manipulations change the count) and therefore StepLimit stop
/// points legitimately differ from the stream engines, so the comparator
/// masks those fields for them (see docs/TRAPS.md). Return-stack values
/// are compared exactly for every engine: calls push canonical original
/// instruction indices even in specialized code.
using engine::isStaticEngine;

/// Injectable resource limits for one observed run.
struct RunLimits {
  unsigned DsCapacity = vm::ExecContext::StackCells;
  unsigned RsCapacity = vm::ExecContext::StackCells;
  uint64_t MaxSteps = UINT64_MAX;
  /// Accessible data-space limit in bytes (Vm::setAccessibleLimit);
  /// SIZE_MAX leaves the machine's full data space addressable.
  size_t DataSpaceLimit = static_cast<size_t>(-1);
};

/// Everything observable about one engine run.
struct EngineObservation {
  vm::RunOutcome Outcome;
  std::vector<vm::Cell> DS; ///< final data stack, bottom first
  std::vector<vm::Cell> RS; ///< final return stack, bottom first
  std::string Out;          ///< everything the program printed
  unsigned DsHighWater = 0; ///< sampled watermark (lower bound on peak)
  unsigned RsHighWater = 0;
};

/// Runs instruction \p Entry of \p Prog under engine \p E against a copy
/// of \p Sys's machine state, with \p Limits applied.
EngineObservation observeEngine(const forth::System &Sys,
                                const vm::Code &Prog, uint32_t Entry,
                                EngineId E, const RunLimits &Limits = {});

/// Preempted execution: runs \p Entry in slices of at most \p SliceSteps
/// steps, re-entering at the recorded fault PC after every StepLimit
/// stop (with ExecContext::Resume set so the return-stack sentinel is
/// not re-seeded). Slice i runs under Rotation[i % Rotation.size()]; a
/// static engine asked to resume at a PC that is not a basic-block
/// leader hands that slice to the Switch engine instead (stream stop
/// points need not be leaders). \p Limits.MaxSteps bounds the *total*
/// step budget across slices. The result is indistinguishable from a
/// one-shot run on the same engine except for the watermarks, which a
/// sliced run samples at every slice boundary.
EngineObservation observeEngineSliced(const forth::System &Sys,
                                      const vm::Code &Prog, uint32_t Entry,
                                      const std::vector<EngineId> &Rotation,
                                      uint64_t SliceSteps,
                                      const RunLimits &Limits = {});

/// Pure comparator: empty string when \p Got (produced by \p GotId) is
/// consistent with the reference observation \p Ref, else a readable
/// divergence description. Static engines are compared with step counts
/// and StepLimit stop points masked; everything else — including
/// return-stack values — is compared exactly.
std::string compareObservations(const EngineObservation &Ref,
                                const EngineObservation &Got, EngineId GotId);

/// Strict same-engine comparator for sliced-vs-one-shot runs: every
/// field except the watermarks (which sliced runs sample at more points)
/// must match, with no static masks — a sliced run and a one-shot run of
/// the *same* engine take identical paths. Empty string on agreement.
std::string compareSlicedObservation(const EngineObservation &OneShot,
                                     const EngineObservation &Sliced,
                                     EngineId Id);

/// Renders an observation for divergence messages.
std::string describeObservation(const EngineObservation &O);

/// Aggregate result of one injection campaign.
struct InjectReport {
  uint64_t Points = 0;         ///< injection points exercised
  uint64_t Faults = 0;         ///< reference runs that ended in a trap
  uint64_t Mismatches = 0;     ///< comparator failures
  std::string FirstDivergence; ///< first failure, for the test log
  bool ok() const { return Mismatches == 0; }
};

/// Step-limit sweep: runs \p Word to completion once under \p Limits,
/// then replays it with MaxSteps = 0..completion, requiring all six
/// stream engines to agree on the full outcome (including the resume PC
/// and trap-time depths) at every point. Static engines are excluded:
/// their step counts are not comparable.
InjectReport sweepStepLimit(const forth::System &Sys, const std::string &Word,
                            const RunLimits &Limits = {});

/// Capacity shrink: determines the true data/return stack peaks of
/// \p Word by bisection, then replays it at every capacity below each
/// peak (forcing StackOverflow / RStackOverflow at the deepest point)
/// and at data-space limits below the program's reach (forcing
/// BadMemAccess), requiring identical FaultInfo everywhere.
/// \p IncludeStatic adds the two static engines; callers enable it only
/// for programs whose overflow point is not deferrable by manipulation
/// absorption (e.g. literal pushes - see docs/TRAPS.md).
InjectReport shrinkCapacities(const forth::System &Sys,
                              const std::string &Word,
                              const RunLimits &Limits = {},
                              bool IncludeStatic = false);

/// Mutation fuzz: applies \p Rounds random point mutations to the
/// program's instruction stream (seeded by \p Seed); mutants that still
/// pass Code::verify are run across all engines, requiring identical
/// outcomes (static engines are skipped for mutants that hit the step
/// budget). A default budget of 100k steps applies when \p Limits leaves
/// MaxSteps unlimited, because verified mutants may still diverge.
InjectReport mutateAndCompare(const forth::System &Sys,
                              const std::string &Word, uint64_t Rounds,
                              uint64_t Seed, const RunLimits &Limits = {});

/// Slice-boundary sweep: proves sliced == one-shot. Runs \p Word once to
/// completion, then replays it under every engine with every slice
/// length 1..min(total steps, \p MaxSlice; 0 means no cap), requiring
/// strict equality with that engine's one-shot observation. Finally runs
/// a set of mixed-engine rotations (including stream->static resumes)
/// and checks each against the Switch reference with the usual static
/// masks.
InjectReport sweepSliceBoundaries(const forth::System &Sys,
                                  const std::string &Word,
                                  const RunLimits &Limits = {},
                                  uint64_t MaxSlice = 0);

/// Sliced fault matrix: re-runs the step-limit and stack-capacity fault
/// campaigns with execution cut into \p SliceSteps-step slices and
/// requires the final observation — FaultInfo included — to be
/// identical to the corresponding one-shot run, engine by engine. A
/// preempted-and-resumed run must trap exactly like an uninterrupted
/// one.
InjectReport sweepSlicedFaults(const forth::System &Sys,
                               const std::string &Word,
                               const RunLimits &Limits = {},
                               uint64_t SliceSteps = 3);

/// Snapshot-boundary sweep: proves checkpoint/restore == one-shot. For
/// every engine, runs \p Word once uninterrupted, then for every slice
/// boundary k (1..total-1 own steps, capped by \p MaxCut when nonzero):
/// runs k steps, serializes the machine, restores the bytes into a
/// completely fresh ExecContext and Vm (cross-process style: nothing is
/// shared with the original run), and
///
///   - re-serializes immediately, requiring byte-for-byte identity
///     (serialize . restore is the identity on valid snapshots);
///   - continues the restored state under the same engine, requiring
///     strict field-for-field equality with the one-shot run; and
///   - continues a second restore under a rotated *different* engine —
///     snapshots are engine-neutral — checked against the Switch
///     reference (static masks apply when either engine is static, and a
///     static engine restored at a non-leader PC routes slices to Switch
///     until it can rejoin, mirroring VmSession).
///
/// Faulting words exercise snapshot-under-fault: the continuation must
/// reproduce the original fault field for field.
InjectReport sweepSnapshotBoundaries(const forth::System &Sys,
                                     const std::string &Word,
                                     const RunLimits &Limits = {},
                                     uint64_t MaxCut = 0);

/// Mutation fuzz over valid snapshots: builds a pool of genuine
/// serialized states of \p Word (several cut points), then \p Rounds
/// times corrupts a copy — random byte flips, truncations, junk
/// extensions, zeroed spans — and feeds it to restore(). Every mutant
/// must either be rejected with a typed SnapshotError or be byte-for-
/// byte identical to its uncorrupted original; anything else (or any
/// crash, which the sanitizer jobs would catch) is a mismatch.
InjectReport fuzzSnapshots(const forth::System &Sys, const std::string &Word,
                           uint64_t Rounds, uint64_t Seed,
                           const RunLimits &Limits = {});

/// Time-travel replay: restores \p T's checkpoint and re-executes its
/// recorded slice-budget schedule under \p E (with the static-leader
/// fallback of sliced observation). The trace pins the entire schedule,
/// so the outcome is a deterministic function of (checkpoint, budgets,
/// engine): replaying a faulting job's trace reproduces its fault. On a
/// restore error returns an empty observation and sets \p OutErr.
/// Outcome.Steps includes the steps the checkpoint had already retired,
/// so a full-trace replay is comparable to a one-shot observation.
EngineObservation replayTrace(const vm::Code &Prog,
                              const snapshot::ReplayTrace &T, EngineId E,
                              snapshot::SnapshotError *OutErr = nullptr);

/// Exact data-stack peak of \p Word by capacity bisection: the smallest
/// DsCapacity under which the run still reproduces the unconstrained
/// outcome. Complements ExecContext::DsHighWater, which is only sampled
/// at run boundaries and traps.
unsigned measureDsHighWater(const forth::System &Sys, const std::string &Word,
                            const RunLimits &Limits = {});

} // namespace sc::harness

#endif // SC_HARNESS_FAULTINJECT_H
