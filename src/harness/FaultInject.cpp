//===-- harness/FaultInject.cpp - Systematic fault injection --------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "harness/FaultInject.h"

#include "dispatch/Engines.h"
#include "dynamic/Dynamic3Engine.h"
#include "dynamic/ModelInterpreter.h"
#include "staticcache/StaticEngine.h"
#include "staticcache/StaticSpec.h"
#include "support/Assert.h"
#include "support/Rng.h"
#include "vm/FaultDiag.h"

using namespace sc;
using namespace sc::harness;
using namespace sc::vm;

const char *sc::harness::engineName(EngineId E) {
  switch (E) {
  case EngineId::Switch:
    return "switch";
  case EngineId::Threaded:
    return "threaded";
  case EngineId::CallThreaded:
    return "call-threaded";
  case EngineId::ThreadedTos:
    return "threaded-tos";
  case EngineId::Dynamic3:
    return "dynamic3";
  case EngineId::Model:
    return "model";
  case EngineId::StaticGreedy:
    return "static-greedy";
  case EngineId::StaticOptimal:
    return "static-optimal";
  }
  sc::unreachable("bad engine id");
}

EngineObservation sc::harness::observeEngine(const forth::System &Sys,
                                             const Code &Prog, uint32_t Entry,
                                             EngineId E,
                                             const RunLimits &Limits) {
  Vm Copy = Sys.Machine;
  Copy.resetOutput();
  Copy.setAccessibleLimit(Limits.DataSpaceLimit);
  ExecContext Ctx(Prog, Copy);
  Ctx.MaxSteps = Limits.MaxSteps;
  Ctx.setStackCapacities(Limits.DsCapacity, Limits.RsCapacity);

  RunOutcome O;
  switch (E) {
  case EngineId::Switch:
    O = dispatch::runSwitchEngine(Ctx, Entry);
    break;
  case EngineId::Threaded:
    O = dispatch::runThreadedEngine(Ctx, Entry);
    break;
  case EngineId::CallThreaded:
    O = dispatch::runCallThreadedEngine(Ctx, Entry);
    break;
  case EngineId::ThreadedTos:
    O = dispatch::runThreadedTosEngine(Ctx, Entry);
    break;
  case EngineId::Dynamic3:
    O = dynamic::runDynamic3Engine(Ctx, Entry);
    break;
  case EngineId::Model: {
    dynamic::ModelConfig Cfg;
    Cfg.Policy = {3, 2};
    Cfg.VerifyShadow = true;
    O = dynamic::runModelInterpreter(Ctx, Entry, Cfg).Outcome;
    break;
  }
  case EngineId::StaticGreedy: {
    staticcache::SpecProgram SP = staticcache::compileStatic(Prog);
    O = staticcache::runStaticEngine(SP, Ctx, Entry);
    break;
  }
  case EngineId::StaticOptimal: {
    staticcache::StaticOptions Opts;
    Opts.TwoPassOptimal = true;
    staticcache::SpecProgram SP = staticcache::compileStatic(Prog, Opts);
    O = staticcache::runStaticEngine(SP, Ctx, Entry);
    break;
  }
  }

  EngineObservation Obs;
  Obs.Outcome = O;
  Obs.DS.assign(Ctx.DS.begin(), Ctx.DS.begin() + Ctx.DsDepth);
  Obs.RS.assign(Ctx.RS.begin(), Ctx.RS.begin() + Ctx.RsDepth);
  Obs.Out = Copy.Out;
  Obs.DsHighWater = Ctx.DsHighWater;
  Obs.RsHighWater = Ctx.RsHighWater;
  return Obs;
}

std::string sc::harness::describeObservation(const EngineObservation &O) {
  std::string S = runStatusName(O.Outcome.Status);
  S += " steps=";
  S += std::to_string(O.Outcome.Steps);
  if (O.Outcome.Status != RunStatus::Halted) {
    S += " {";
    S += faultSummary(O.Outcome);
    S += '}';
  }
  S += " ds=[";
  for (Cell V : O.DS) {
    S += std::to_string(V);
    S += ' ';
  }
  S += "] rs-depth=";
  S += std::to_string(O.RS.size());
  S += " out=\"";
  S += O.Out;
  S += '"';
  return S;
}

std::string sc::harness::compareObservations(const EngineObservation &Ref,
                                             const EngineObservation &Got,
                                             EngineId GotId) {
  const bool Masked = isStaticEngine(GotId);
  auto Fail = [&](const char *What) {
    std::string S(engineName(GotId));
    S += " diverges in ";
    S += What;
    S += "\n  ref: ";
    S += describeObservation(Ref);
    S += "\n  got: ";
    S += describeObservation(Got);
    return S;
  };

  if (Got.Outcome.Status != Ref.Outcome.Status)
    return Fail("status");
  // A statically cached run stops at a different logical point when the
  // step budget expires (micros and removed manips change the count), so
  // only the status is comparable.
  if (Masked && Ref.Outcome.Status == RunStatus::StepLimit)
    return {};
  if (!Masked && Got.Outcome.Steps != Ref.Outcome.Steps)
    return Fail("step count");
  if (Got.DS != Ref.DS)
    return Fail("data stack");
  if (Got.Out != Ref.Out)
    return Fail("output");
  if (Got.RS.size() != Ref.RS.size())
    return Fail("return stack depth");
  // Static return stacks hold specialized return addresses mid-call.
  if (!Masked && Got.RS != Ref.RS)
    return Fail("return stack");
  if (Ref.Outcome.Status == RunStatus::Halted)
    return {};
  if (Got.Outcome.Fault != Ref.Outcome.Fault)
    return Fail("fault info");
  return {};
}

namespace {

/// Runs \p Word under every selected engine and folds comparator failures
/// into \p R, labelling them with \p Where.
void compareAcross(const forth::System &Sys, const Code &Prog, uint32_t Entry,
                   const RunLimits &Limits, bool IncludeStatic,
                   const std::string &Where, InjectReport &R) {
  EngineObservation Ref =
      observeEngine(Sys, Prog, Entry, EngineId::Switch, Limits);
  ++R.Points;
  if (Ref.Outcome.Status != RunStatus::Halted)
    ++R.Faults;
  for (unsigned E = 1; E < NumEngines; ++E) {
    EngineId Id = static_cast<EngineId>(E);
    if (isStaticEngine(Id) && !IncludeStatic)
      continue;
    std::string D =
        compareObservations(Ref, observeEngine(Sys, Prog, Entry, Id, Limits),
                            Id);
    if (!D.empty()) {
      ++R.Mismatches;
      if (R.FirstDivergence.empty())
        R.FirstDivergence = Where + ": " + D;
    }
  }
}

/// Smallest value in [Lo, Hi] for which \p Keeps holds, assuming
/// monotonicity (Keeps(Hi) must hold). Used for capacity/limit bisection.
template <typename Pred>
uint64_t bisectSmallest(uint64_t Lo, uint64_t Hi, Pred Keeps) {
  while (Lo < Hi) {
    uint64_t Mid = Lo + (Hi - Lo) / 2;
    if (Keeps(Mid))
      Hi = Mid;
    else
      Lo = Mid + 1;
  }
  return Lo;
}

bool sameResult(const EngineObservation &A, const EngineObservation &B) {
  return A.Outcome.Status == B.Outcome.Status &&
         A.Outcome.Steps == B.Outcome.Steps && A.DS == B.DS && A.Out == B.Out;
}

} // namespace

InjectReport sc::harness::sweepStepLimit(const forth::System &Sys,
                                         const std::string &Word,
                                         const RunLimits &Limits) {
  InjectReport R;
  const uint32_t Entry = Sys.entryOf(Word);
  EngineObservation Full =
      observeEngine(Sys, Sys.Prog, Entry, EngineId::Switch, Limits);
  const uint64_t Total = Full.Outcome.Steps;
  for (uint64_t M = 0; M <= Total; ++M) {
    RunLimits L = Limits;
    L.MaxSteps = M;
    compareAcross(Sys, Sys.Prog, Entry, L, /*IncludeStatic=*/false,
                  "MaxSteps=" + std::to_string(M), R);
  }
  return R;
}

unsigned sc::harness::measureDsHighWater(const forth::System &Sys,
                                         const std::string &Word,
                                         const RunLimits &Limits) {
  const uint32_t Entry = Sys.entryOf(Word);
  EngineObservation Full =
      observeEngine(Sys, Sys.Prog, Entry, EngineId::Switch, Limits);
  return static_cast<unsigned>(bisectSmallest(0, Limits.DsCapacity, [&](
                                                  uint64_t C) {
    RunLimits L = Limits;
    L.DsCapacity = static_cast<unsigned>(C);
    return sameResult(observeEngine(Sys, Sys.Prog, Entry, EngineId::Switch, L),
                      Full);
  }));
}

InjectReport sc::harness::shrinkCapacities(const forth::System &Sys,
                                           const std::string &Word,
                                           const RunLimits &Limits,
                                           bool IncludeStatic) {
  InjectReport R;
  const uint32_t Entry = Sys.entryOf(Word);
  EngineObservation Full =
      observeEngine(Sys, Sys.Prog, Entry, EngineId::Switch, Limits);

  auto Keeps = [&](const RunLimits &L) {
    return sameResult(observeEngine(Sys, Sys.Prog, Entry, EngineId::Switch, L),
                      Full);
  };

  // Data-stack capacities below the peak: every one must overflow at the
  // same instruction in every engine.
  const unsigned PeakDs =
      static_cast<unsigned>(bisectSmallest(0, Limits.DsCapacity, [&](
                                               uint64_t C) {
        RunLimits L = Limits;
        L.DsCapacity = static_cast<unsigned>(C);
        return Keeps(L);
      }));
  for (unsigned C = 0; C < PeakDs; ++C) {
    RunLimits L = Limits;
    L.DsCapacity = C;
    compareAcross(Sys, Sys.Prog, Entry, L, IncludeStatic,
                  "DsCapacity=" + std::to_string(C), R);
  }

  // Return-stack capacities below the peak (the entry sentinel makes the
  // minimum useful capacity 1; capacity 0 exercises the pre-run check).
  const unsigned PeakRs =
      static_cast<unsigned>(bisectSmallest(0, Limits.RsCapacity, [&](
                                               uint64_t C) {
        RunLimits L = Limits;
        L.RsCapacity = static_cast<unsigned>(C);
        return Keeps(L);
      }));
  for (unsigned C = 0; C < PeakRs; ++C) {
    RunLimits L = Limits;
    L.RsCapacity = C;
    compareAcross(Sys, Sys.Prog, Entry, L, IncludeStatic,
                  "RsCapacity=" + std::to_string(C), R);
  }

  // Data-space limits below the program's reach: the first out-of-range
  // access must fault with the same offending address in every engine.
  const size_t FullSpace = Sys.Machine.dataSpaceSize();
  const size_t Reach = bisectSmallest(0, FullSpace, [&](uint64_t B) {
    RunLimits L = Limits;
    L.DataSpaceLimit = static_cast<size_t>(B);
    return Keeps(L);
  });
  if (Reach > 0) {
    // Every byte short of the reach faults identically; probe the
    // boundary and a few interior points instead of all of them.
    const size_t Probes[] = {Reach - 1, Reach > 8 ? Reach - 8 : 0, Reach / 2,
                             0};
    size_t Last = static_cast<size_t>(-1);
    for (size_t B : Probes) {
      if (B == Last)
        continue;
      Last = B;
      RunLimits L = Limits;
      L.DataSpaceLimit = B;
      compareAcross(Sys, Sys.Prog, Entry, L, IncludeStatic,
                    "DataSpaceLimit=" + std::to_string(B), R);
    }
  }
  return R;
}

InjectReport sc::harness::mutateAndCompare(const forth::System &Sys,
                                           const std::string &Word,
                                           uint64_t Rounds, uint64_t Seed,
                                           const RunLimits &Limits) {
  InjectReport R;
  const uint32_t Entry = Sys.entryOf(Word);
  RunLimits L = Limits;
  if (L.MaxSteps == UINT64_MAX)
    L.MaxSteps = 100000; // verified mutants may still loop forever
  Rng Rand(Seed);

  for (uint64_t Round = 0; Round < Rounds; ++Round) {
    Code Mut = Sys.Prog;
    const unsigned Edits = 1 + static_cast<unsigned>(Rand.below(3));
    for (unsigned E = 0; E < Edits; ++E) {
      Inst &In = Mut.Insts[Rand.below(Mut.Insts.size())];
      switch (Rand.below(4)) {
      case 0:
        In.Op = static_cast<Opcode>(Rand.below(NumOpcodes));
        break;
      case 1:
        In.Operand = Rand.range(-64, 64);
        break;
      case 2:
        In.Operand ^= static_cast<Cell>(1) << Rand.below(32);
        break;
      case 3:
        In.Operand = static_cast<Cell>(Rand.below(Mut.Insts.size()));
        break;
      }
    }
    Mut.touch(); // edits bypassed emit(); invalidate cached translations
    if (!Mut.verify())
      continue; // the oracle rejected the mutant

    EngineObservation Ref =
        observeEngine(Sys, Mut, Entry, EngineId::Switch, L);
    ++R.Points;
    if (Ref.Outcome.Status != RunStatus::Halted)
      ++R.Faults;
    const bool Limited = Ref.Outcome.Status == RunStatus::StepLimit;
    for (unsigned E = 1; E < NumEngines; ++E) {
      EngineId Id = static_cast<EngineId>(E);
      if (isStaticEngine(Id) && Limited)
        continue; // static step counts make the stop point incomparable
      std::string D =
          compareObservations(Ref, observeEngine(Sys, Mut, Entry, Id, L), Id);
      if (!D.empty()) {
        ++R.Mismatches;
        if (R.FirstDivergence.empty())
          R.FirstDivergence =
              "mutation round " + std::to_string(Round) + ": " + D;
      }
    }
  }
  return R;
}
