//===-- harness/FaultInject.cpp - Systematic fault injection --------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "harness/FaultInject.h"

#include "prepare/PrepareCache.h"
#include "staticcache/StaticSpec.h"
#include "support/Assert.h"
#include "support/Rng.h"
#include "vm/FaultDiag.h"

#include <algorithm>

using namespace sc;
using namespace sc::harness;
using namespace sc::vm;

namespace {

/// Dispatches runs of any engine against a caller-owned ExecContext,
/// through the registry's normalized entry point. A private PrepareCache
/// prepares each flavor once per runner, so a sliced observation reuses
/// one translation (and, for the static flavors, one SpecProgram) across
/// all its slices.
struct EngineRunner {
  const Code &Prog;
  prepare::PrepareCache Cache;

  explicit EngineRunner(const Code &P) : Prog(P) {}

  const prepare::PreparedCode &prepared(EngineId E) {
    return *Cache.getOrPrepare(Prog, E);
  }

  /// True when original PC \p Pc is a legal entry point of \p E's
  /// transformed program (static state-0 entries, regvm block leaders).
  bool canEnter(EngineId E, uint32_t Pc) {
    return prepare::canEnterAt(prepared(E), Pc);
  }

  RunOutcome run(ExecContext &Ctx, EngineId E, uint32_t Entry) {
    engine::RunOptions Opts;
    Opts.Entry = Entry;
    // Callers stage the budget and resume flag in the context; forward
    // them so the normalized entry point reinstalls the same values.
    Opts.MaxSteps = Ctx.MaxSteps;
    Opts.Resume = Ctx.Resume;
    Opts.Prepared = &prepared(E);
    return engine::runEngine(E, Prog, Ctx, Opts);
  }
};

EngineObservation snapshotObservation(const ExecContext &Ctx, const Vm &Machine,
                                      const RunOutcome &O) {
  EngineObservation Obs;
  Obs.Outcome = O;
  Obs.DS.assign(Ctx.DS.begin(), Ctx.DS.begin() + Ctx.DsDepth);
  Obs.RS.assign(Ctx.RS.begin(), Ctx.RS.begin() + Ctx.RsDepth);
  Obs.Out = Machine.Out;
  Obs.DsHighWater = Ctx.DsHighWater;
  Obs.RsHighWater = Ctx.RsHighWater;
  return Obs;
}

} // namespace

EngineObservation sc::harness::observeEngine(const forth::System &Sys,
                                             const Code &Prog, uint32_t Entry,
                                             EngineId E,
                                             const RunLimits &Limits) {
  Vm Copy = Sys.Machine;
  Copy.resetOutput();
  Copy.setAccessibleLimit(Limits.DataSpaceLimit);
  ExecContext Ctx(Prog, Copy);
  Ctx.MaxSteps = Limits.MaxSteps;
  Ctx.setStackCapacities(Limits.DsCapacity, Limits.RsCapacity);

  EngineRunner Runner(Prog);
  RunOutcome O = Runner.run(Ctx, E, Entry);
  return snapshotObservation(Ctx, Copy, O);
}

EngineObservation sc::harness::observeEngineSliced(
    const forth::System &Sys, const Code &Prog, uint32_t Entry,
    const std::vector<EngineId> &Rotation, uint64_t SliceSteps,
    const RunLimits &Limits) {
  SC_ASSERT(!Rotation.empty(), "empty engine rotation");
  SC_ASSERT(SliceSteps > 0, "slices must make progress");
  Vm Copy = Sys.Machine;
  Copy.resetOutput();
  Copy.setAccessibleLimit(Limits.DataSpaceLimit);
  ExecContext Ctx(Prog, Copy);
  Ctx.setStackCapacities(Limits.DsCapacity, Limits.RsCapacity);

  EngineRunner Runner(Prog);
  uint64_t Remaining = Limits.MaxSteps;
  uint64_t TotalSteps = 0;
  uint32_t Pc = Entry;
  RunOutcome O;
  for (uint64_t Slice = 0;; ++Slice) {
    EngineId E = Rotation[Slice % Rotation.size()];
    if (isStaticEngine(E) && !Runner.canEnter(E, Pc))
      E = EngineId::Switch;
    Ctx.MaxSteps = std::min(SliceSteps, Remaining);
    O = Runner.run(Ctx, E, Pc);
    TotalSteps += O.Steps;
    // A static slice may overshoot its budget to reach a safe point;
    // the overshoot is charged against the total budget like any other
    // executed step.
    Remaining -= std::min(O.Steps, Remaining);
    if (O.Status != RunStatus::StepLimit || Remaining == 0)
      break;
    Pc = O.Fault.Pc;
    Ctx.Resume = true; // the sentinel survives from the preempted slice
  }
  O.Steps = TotalSteps;
  return snapshotObservation(Ctx, Copy, O);
}

std::string sc::harness::describeObservation(const EngineObservation &O) {
  std::string S = runStatusName(O.Outcome.Status);
  S += " steps=";
  S += std::to_string(O.Outcome.Steps);
  if (O.Outcome.Status != RunStatus::Halted) {
    S += " {";
    S += faultSummary(O.Outcome);
    S += '}';
  }
  S += " ds=[";
  for (Cell V : O.DS) {
    S += std::to_string(V);
    S += ' ';
  }
  S += "] rs-depth=";
  S += std::to_string(O.RS.size());
  S += " out=\"";
  S += O.Out;
  S += '"';
  return S;
}

std::string sc::harness::compareObservations(const EngineObservation &Ref,
                                             const EngineObservation &Got,
                                             EngineId GotId) {
  const bool Masked = isStaticEngine(GotId);
  auto Fail = [&](const char *What) {
    std::string S(engineName(GotId));
    S += " diverges in ";
    S += What;
    S += "\n  ref: ";
    S += describeObservation(Ref);
    S += "\n  got: ";
    S += describeObservation(Got);
    return S;
  };

  if (Got.Outcome.Status != Ref.Outcome.Status)
    return Fail("status");
  // A statically cached run stops at a different logical point when the
  // step budget expires (micros and removed manips change the count), so
  // only the status is comparable.
  if (Masked && Ref.Outcome.Status == RunStatus::StepLimit)
    return {};
  if (!Masked && Got.Outcome.Steps != Ref.Outcome.Steps)
    return Fail("step count");
  if (Got.DS != Ref.DS)
    return Fail("data stack");
  if (Got.Out != Ref.Out)
    return Fail("output");
  if (Got.RS.size() != Ref.RS.size())
    return Fail("return stack depth");
  // Return addresses are canonical original-code indices in every
  // engine (specialized calls push SpecToOrig-mapped values), so the
  // contents are comparable even for the static engines.
  if (Got.RS != Ref.RS)
    return Fail("return stack");
  if (Ref.Outcome.Status == RunStatus::Halted)
    return {};
  if (Got.Outcome.Fault != Ref.Outcome.Fault)
    return Fail("fault info");
  return {};
}

std::string sc::harness::compareSlicedObservation(
    const EngineObservation &OneShot, const EngineObservation &Sliced,
    EngineId Id) {
  auto Fail = [&](const char *What) {
    std::string S(engineName(Id));
    S += " sliced run diverges in ";
    S += What;
    S += "\n  one-shot: ";
    S += describeObservation(OneShot);
    S += "\n  sliced:   ";
    S += describeObservation(Sliced);
    return S;
  };
  if (Sliced.Outcome.Status != OneShot.Outcome.Status)
    return Fail("status");
  if (Sliced.Outcome.Steps != OneShot.Outcome.Steps)
    return Fail("step count");
  if (Sliced.DS != OneShot.DS)
    return Fail("data stack");
  if (Sliced.RS != OneShot.RS)
    return Fail("return stack");
  if (Sliced.Out != OneShot.Out)
    return Fail("output");
  if (OneShot.Outcome.Status != RunStatus::Halted &&
      Sliced.Outcome.Fault != OneShot.Outcome.Fault)
    return Fail("fault info");
  return {};
}

namespace {

/// Runs \p Word under every selected engine and folds comparator failures
/// into \p R, labelling them with \p Where.
void compareAcross(const forth::System &Sys, const Code &Prog, uint32_t Entry,
                   const RunLimits &Limits, bool IncludeStatic,
                   const std::string &Where, InjectReport &R) {
  EngineObservation Ref =
      observeEngine(Sys, Prog, Entry, EngineId::Switch, Limits);
  ++R.Points;
  if (Ref.Outcome.Status != RunStatus::Halted)
    ++R.Faults;
  for (unsigned E = 1; E < NumEngines; ++E) {
    EngineId Id = static_cast<EngineId>(E);
    if (isStaticEngine(Id) && !IncludeStatic)
      continue;
    std::string D =
        compareObservations(Ref, observeEngine(Sys, Prog, Entry, Id, Limits),
                            Id);
    if (!D.empty()) {
      ++R.Mismatches;
      if (R.FirstDivergence.empty())
        R.FirstDivergence = Where + ": " + D;
    }
  }
}

/// Smallest value in [Lo, Hi] for which \p Keeps holds, assuming
/// monotonicity (Keeps(Hi) must hold). Used for capacity/limit bisection.
template <typename Pred>
uint64_t bisectSmallest(uint64_t Lo, uint64_t Hi, Pred Keeps) {
  while (Lo < Hi) {
    uint64_t Mid = Lo + (Hi - Lo) / 2;
    if (Keeps(Mid))
      Hi = Mid;
    else
      Lo = Mid + 1;
  }
  return Lo;
}

bool sameResult(const EngineObservation &A, const EngineObservation &B) {
  return A.Outcome.Status == B.Outcome.Status &&
         A.Outcome.Steps == B.Outcome.Steps && A.DS == B.DS && A.Out == B.Out;
}

} // namespace

InjectReport sc::harness::sweepStepLimit(const forth::System &Sys,
                                         const std::string &Word,
                                         const RunLimits &Limits) {
  InjectReport R;
  const uint32_t Entry = Sys.entryOf(Word);
  EngineObservation Full =
      observeEngine(Sys, Sys.Prog, Entry, EngineId::Switch, Limits);
  const uint64_t Total = Full.Outcome.Steps;
  for (uint64_t M = 0; M <= Total; ++M) {
    RunLimits L = Limits;
    L.MaxSteps = M;
    compareAcross(Sys, Sys.Prog, Entry, L, /*IncludeStatic=*/false,
                  "MaxSteps=" + std::to_string(M), R);
  }
  return R;
}

unsigned sc::harness::measureDsHighWater(const forth::System &Sys,
                                         const std::string &Word,
                                         const RunLimits &Limits) {
  const uint32_t Entry = Sys.entryOf(Word);
  EngineObservation Full =
      observeEngine(Sys, Sys.Prog, Entry, EngineId::Switch, Limits);
  return static_cast<unsigned>(bisectSmallest(0, Limits.DsCapacity, [&](
                                                  uint64_t C) {
    RunLimits L = Limits;
    L.DsCapacity = static_cast<unsigned>(C);
    return sameResult(observeEngine(Sys, Sys.Prog, Entry, EngineId::Switch, L),
                      Full);
  }));
}

InjectReport sc::harness::shrinkCapacities(const forth::System &Sys,
                                           const std::string &Word,
                                           const RunLimits &Limits,
                                           bool IncludeStatic) {
  InjectReport R;
  const uint32_t Entry = Sys.entryOf(Word);
  EngineObservation Full =
      observeEngine(Sys, Sys.Prog, Entry, EngineId::Switch, Limits);

  auto Keeps = [&](const RunLimits &L) {
    return sameResult(observeEngine(Sys, Sys.Prog, Entry, EngineId::Switch, L),
                      Full);
  };

  // Data-stack capacities below the peak: every one must overflow at the
  // same instruction in every engine.
  const unsigned PeakDs =
      static_cast<unsigned>(bisectSmallest(0, Limits.DsCapacity, [&](
                                               uint64_t C) {
        RunLimits L = Limits;
        L.DsCapacity = static_cast<unsigned>(C);
        return Keeps(L);
      }));
  for (unsigned C = 0; C < PeakDs; ++C) {
    RunLimits L = Limits;
    L.DsCapacity = C;
    compareAcross(Sys, Sys.Prog, Entry, L, IncludeStatic,
                  "DsCapacity=" + std::to_string(C), R);
  }

  // Return-stack capacities below the peak (the entry sentinel makes the
  // minimum useful capacity 1; capacity 0 exercises the pre-run check).
  const unsigned PeakRs =
      static_cast<unsigned>(bisectSmallest(0, Limits.RsCapacity, [&](
                                               uint64_t C) {
        RunLimits L = Limits;
        L.RsCapacity = static_cast<unsigned>(C);
        return Keeps(L);
      }));
  for (unsigned C = 0; C < PeakRs; ++C) {
    RunLimits L = Limits;
    L.RsCapacity = C;
    compareAcross(Sys, Sys.Prog, Entry, L, IncludeStatic,
                  "RsCapacity=" + std::to_string(C), R);
  }

  // Data-space limits below the program's reach: the first out-of-range
  // access must fault with the same offending address in every engine.
  const size_t FullSpace = Sys.Machine.dataSpaceSize();
  const size_t Reach = bisectSmallest(0, FullSpace, [&](uint64_t B) {
    RunLimits L = Limits;
    L.DataSpaceLimit = static_cast<size_t>(B);
    return Keeps(L);
  });
  if (Reach > 0) {
    // Every byte short of the reach faults identically; probe the
    // boundary and a few interior points instead of all of them.
    const size_t Probes[] = {Reach - 1, Reach > 8 ? Reach - 8 : 0, Reach / 2,
                             0};
    size_t Last = static_cast<size_t>(-1);
    for (size_t B : Probes) {
      if (B == Last)
        continue;
      Last = B;
      RunLimits L = Limits;
      L.DataSpaceLimit = B;
      compareAcross(Sys, Sys.Prog, Entry, L, IncludeStatic,
                    "DataSpaceLimit=" + std::to_string(B), R);
    }
  }
  return R;
}

InjectReport sc::harness::mutateAndCompare(const forth::System &Sys,
                                           const std::string &Word,
                                           uint64_t Rounds, uint64_t Seed,
                                           const RunLimits &Limits) {
  InjectReport R;
  const uint32_t Entry = Sys.entryOf(Word);
  RunLimits L = Limits;
  if (L.MaxSteps == UINT64_MAX)
    L.MaxSteps = 100000; // verified mutants may still loop forever
  Rng Rand(Seed);

  for (uint64_t Round = 0; Round < Rounds; ++Round) {
    Code Mut = Sys.Prog;
    const unsigned Edits = 1 + static_cast<unsigned>(Rand.below(3));
    for (unsigned E = 0; E < Edits; ++E) {
      Inst &In = Mut.Insts[Rand.below(Mut.Insts.size())];
      switch (Rand.below(4)) {
      case 0:
        In.Op = static_cast<Opcode>(Rand.below(NumOpcodes));
        break;
      case 1:
        In.Operand = Rand.range(-64, 64);
        break;
      case 2:
        In.Operand ^= static_cast<Cell>(1) << Rand.below(32);
        break;
      case 3:
        In.Operand = static_cast<Cell>(Rand.below(Mut.Insts.size()));
        break;
      }
    }
    Mut.touch(); // edits bypassed emit(); invalidate cached translations
    if (!Mut.verify())
      continue; // the oracle rejected the mutant

    EngineObservation Ref =
        observeEngine(Sys, Mut, Entry, EngineId::Switch, L);
    ++R.Points;
    if (Ref.Outcome.Status != RunStatus::Halted)
      ++R.Faults;
    const bool Limited = Ref.Outcome.Status == RunStatus::StepLimit;
    for (unsigned E = 1; E < NumEngines; ++E) {
      EngineId Id = static_cast<EngineId>(E);
      if (isStaticEngine(Id) && Limited)
        continue; // static step counts make the stop point incomparable
      std::string D =
          compareObservations(Ref, observeEngine(Sys, Mut, Entry, Id, L), Id);
      if (!D.empty()) {
        ++R.Mismatches;
        if (R.FirstDivergence.empty())
          R.FirstDivergence =
              "mutation round " + std::to_string(Round) + ": " + D;
      }
    }
  }
  return R;
}

namespace {

/// Folds one sliced-vs-one-shot comparison into \p R.
void checkSliced(const EngineObservation &OneShot,
                 const EngineObservation &Sliced, EngineId Id,
                 const std::string &Where, InjectReport &R) {
  ++R.Points;
  if (OneShot.Outcome.Status != RunStatus::Halted)
    ++R.Faults;
  std::string D = compareSlicedObservation(OneShot, Sliced, Id);
  if (!D.empty()) {
    ++R.Mismatches;
    if (R.FirstDivergence.empty())
      R.FirstDivergence = Where + ": " + D;
  }
}

} // namespace

InjectReport sc::harness::sweepSliceBoundaries(const forth::System &Sys,
                                               const std::string &Word,
                                               const RunLimits &Limits,
                                               uint64_t MaxSlice) {
  InjectReport R;
  const uint32_t Entry = Sys.entryOf(Word);
  EngineObservation Ref =
      observeEngine(Sys, Sys.Prog, Entry, EngineId::Switch, Limits);
  const uint64_t Total = Ref.Outcome.Steps;
  if (MaxSlice == 0 || MaxSlice > Total)
    MaxSlice = Total;

  // Same-engine: every engine, every slice length, strict equality with
  // that engine's own one-shot run.
  for (unsigned E = 0; E < NumEngines; ++E) {
    EngineId Id = static_cast<EngineId>(E);
    EngineObservation OneShot = observeEngine(Sys, Sys.Prog, Entry, Id, Limits);
    for (uint64_t S = 1; S <= MaxSlice; ++S)
      checkSliced(OneShot,
                  observeEngineSliced(Sys, Sys.Prog, Entry, {Id}, S, Limits),
                  Id,
                  std::string(engineName(Id)) + " slice=" + std::to_string(S),
                  R);
  }

  // Mixed rotations: every slice boundary is a cross-engine resume. The
  // final state is checked against the Switch reference with the usual
  // static masks (rotations containing a static engine run extra micro
  // steps, so their step counts are incomparable).
  const std::vector<EngineId> Rotations[] = {
      {EngineId::Switch, EngineId::Threaded},
      {EngineId::Threaded, EngineId::Dynamic3, EngineId::ThreadedTos},
      {EngineId::CallThreaded, EngineId::Model},
      {EngineId::Switch, EngineId::StaticGreedy},
      {EngineId::Dynamic3, EngineId::StaticOptimal, EngineId::Threaded},
  };
  for (const std::vector<EngineId> &Rot : Rotations) {
    const bool HasStatic =
        std::any_of(Rot.begin(), Rot.end(),
                    [](EngineId E) { return isStaticEngine(E); });
    std::string Label = "rotation";
    for (EngineId E : Rot)
      Label += std::string("-") + engineName(E);
    for (uint64_t S : {uint64_t(1), uint64_t(2), uint64_t(3), uint64_t(7)}) {
      ++R.Points;
      EngineObservation Obs =
          observeEngineSliced(Sys, Sys.Prog, Entry, Rot, S, Limits);
      std::string D = compareObservations(
          Ref, Obs, HasStatic ? EngineId::StaticGreedy : Rot[0]);
      if (!D.empty()) {
        ++R.Mismatches;
        if (R.FirstDivergence.empty())
          R.FirstDivergence = Label + " slice=" + std::to_string(S) + ": " + D;
      }
    }
  }
  return R;
}

namespace {

/// Continues a freshly restored context under \p E until the run leaves
/// StepLimit or \p Remaining is exhausted. A static engine restored at a
/// PC that is not a leader of its specialized program single-steps under
/// the reference engine until it can rejoin (the restore-side analogue of
/// VmSession's leader fallback — a foreign snapshot may have stopped
/// anywhere). \p BaseSteps is the work the snapshot had already retired;
/// the returned observation's step count includes it, making the result
/// comparable to a one-shot run.
EngineObservation continueRestored(EngineRunner &Runner, ExecContext &Ctx,
                                   Vm &Machine, EngineId E, uint32_t Pc,
                                   uint64_t Remaining, uint64_t BaseSteps) {
  uint64_t Steps = BaseSteps;
  RunOutcome O;
  for (;;) {
    EngineId Use = E;
    uint64_t Budget = Remaining;
    if (isStaticEngine(E) && !Runner.canEnter(E, Pc)) {
      Use = EngineId::Switch;
      Budget = 1; // one canonical step toward the next leader
    }
    Ctx.MaxSteps = std::min(Budget, Remaining);
    O = Runner.run(Ctx, Use, Pc);
    Steps += O.Steps;
    Remaining -= std::min(O.Steps, Remaining);
    if (O.Status != RunStatus::StepLimit || Remaining == 0)
      break;
    Pc = O.Fault.Pc;
    Ctx.Resume = true;
  }
  O.Steps = Steps;
  return snapshotObservation(Ctx, Machine, O);
}

/// Folds a failure into \p R.
void foldFailure(InjectReport &R, const std::string &Where,
                 const std::string &What) {
  ++R.Mismatches;
  if (R.FirstDivergence.empty())
    R.FirstDivergence = Where + ": " + What;
}

} // namespace

InjectReport sc::harness::sweepSnapshotBoundaries(const forth::System &Sys,
                                                  const std::string &Word,
                                                  const RunLimits &Limits,
                                                  uint64_t MaxCut) {
  InjectReport R;
  const uint32_t Entry = Sys.entryOf(Word);
  EngineRunner Runner(Sys.Prog);
  EngineObservation Ref =
      observeEngine(Sys, Sys.Prog, Entry, EngineId::Switch, Limits);

  for (unsigned E = 0; E < NumEngines; ++E) {
    EngineId Id = static_cast<EngineId>(E);
    EngineObservation OneShot = observeEngine(Sys, Sys.Prog, Entry, Id, Limits);
    const uint64_t Total = OneShot.Outcome.Steps;
    if (Total < 2)
      continue; // no interior boundary to snapshot at
    const uint64_t Cut =
        MaxCut && MaxCut < Total - 1 ? MaxCut : Total - 1;
    for (uint64_t K = 1; K <= Cut; ++K) {
      const std::string Where =
          std::string(engineName(Id)) + " cut=" + std::to_string(K);
      // Run K of the engine's own steps, then make the state durable.
      Vm CutVm = Sys.Machine;
      CutVm.resetOutput();
      CutVm.setAccessibleLimit(Limits.DataSpaceLimit);
      ExecContext CutCtx(Sys.Prog, CutVm);
      CutCtx.setStackCapacities(Limits.DsCapacity, Limits.RsCapacity);
      CutCtx.MaxSteps = K;
      RunOutcome O1 = Runner.run(CutCtx, Id, Entry);
      if (O1.Status != RunStatus::StepLimit)
        continue; // a static slice overshot its budget and finished
      CutCtx.Resume = true; // the sentinel is live; a resume must not re-seed
      snapshot::MachineState MS;
      MS.Pc = O1.Fault.Pc;
      MS.FuelRemaining =
          Limits.MaxSteps == UINT64_MAX ? UINT64_MAX : Limits.MaxSteps - O1.Steps;
      MS.StepsRetired = O1.Steps;
      MS.SlicesRetired = 1;
      const std::vector<uint8_t> Snap = snapshot::serialize(CutCtx, CutVm, MS);

      // Restore into a completely fresh context and machine, as a second
      // process would, and require serialize . restore to be the identity
      // on the bytes.
      ++R.Points;
      Vm Rvm(0);
      ExecContext Rctx(Sys.Prog, Rvm);
      snapshot::MachineState RMS;
      snapshot::SnapshotError Err =
          snapshot::restore(Snap.data(), Snap.size(), Sys.Prog, Rctx, Rvm, RMS);
      if (Err != snapshot::SnapshotError::None) {
        foldFailure(R, Where,
                    std::string("restore refused its own snapshot: ") +
                        snapshot::snapshotErrorName(Err));
        continue;
      }
      if (snapshot::serialize(Rctx, Rvm, RMS) != Snap) {
        foldFailure(R, Where, "re-serialization is not bit-identical");
        continue;
      }

      // Same-engine continuation must be indistinguishable from the
      // engine's own one-shot run (strict comparator).
      checkSliced(OneShot,
                  continueRestored(Runner, Rctx, Rvm, Id, RMS.Pc,
                                   RMS.FuelRemaining, RMS.StepsRetired),
                  Id, Where, R);

      // Cross-engine continuation: snapshots are engine-neutral, so a
      // second restore resumes under a rotated different engine; checked
      // against the Switch reference with static masks when either side
      // is static.
      const EngineId Other = static_cast<EngineId>(
          (E + 1 + K % (NumEngines - 1)) % NumEngines);
      Vm Xvm(0);
      ExecContext Xctx(Sys.Prog, Xvm);
      snapshot::MachineState XMS;
      Err = snapshot::restore(Snap.data(), Snap.size(), Sys.Prog, Xctx, Xvm,
                              XMS);
      SC_ASSERT(Err == snapshot::SnapshotError::None,
                "second restore of a snapshot that already restored");
      ++R.Points;
      if (Ref.Outcome.Status != RunStatus::Halted)
        ++R.Faults;
      EngineObservation Cont = continueRestored(
          Runner, Xctx, Xvm, Other, XMS.Pc, XMS.FuelRemaining, XMS.StepsRetired);
      const EngineId MaskId = isStaticEngine(Id) || isStaticEngine(Other)
                                  ? EngineId::StaticGreedy
                                  : Other;
      std::string D = compareObservations(Ref, Cont, MaskId);
      if (!D.empty())
        foldFailure(R,
                    Where + " resume-on-" + std::string(engineName(Other)), D);
    }
  }
  return R;
}

InjectReport sc::harness::fuzzSnapshots(const forth::System &Sys,
                                        const std::string &Word,
                                        uint64_t Rounds, uint64_t Seed,
                                        const RunLimits &Limits) {
  InjectReport R;
  const uint32_t Entry = Sys.entryOf(Word);
  EngineRunner Runner(Sys.Prog);
  EngineObservation Ref =
      observeEngine(Sys, Sys.Prog, Entry, EngineId::Switch, Limits);
  const uint64_t Total = Ref.Outcome.Steps;

  // Pool of genuine snapshots: the not-yet-started state plus a spread of
  // interior cut points, so mutations hit headers, stack sections, data
  // prefixes, and output sections alike.
  std::vector<std::vector<uint8_t>> Pool;
  {
    Vm FreshVm = Sys.Machine;
    FreshVm.resetOutput();
    FreshVm.setAccessibleLimit(Limits.DataSpaceLimit);
    ExecContext FreshCtx(Sys.Prog, FreshVm);
    FreshCtx.setStackCapacities(Limits.DsCapacity, Limits.RsCapacity);
    FreshCtx.MaxSteps = Limits.MaxSteps;
    snapshot::MachineState MS;
    MS.Pc = Entry;
    MS.FuelRemaining = Limits.MaxSteps;
    Pool.push_back(snapshot::serialize(FreshCtx, FreshVm, MS));
  }
  for (uint64_t K :
       {uint64_t(1), Total / 4, Total / 2, 3 * Total / 4, Total - 1}) {
    if (K == 0 || K >= Total)
      continue;
    Vm CutVm = Sys.Machine;
    CutVm.resetOutput();
    CutVm.setAccessibleLimit(Limits.DataSpaceLimit);
    ExecContext CutCtx(Sys.Prog, CutVm);
    CutCtx.setStackCapacities(Limits.DsCapacity, Limits.RsCapacity);
    CutCtx.MaxSteps = K;
    RunOutcome O = Runner.run(CutCtx, EngineId::Switch, Entry);
    if (O.Status != RunStatus::StepLimit)
      continue;
    CutCtx.Resume = true;
    snapshot::MachineState MS;
    MS.Pc = O.Fault.Pc;
    MS.FuelRemaining =
        Limits.MaxSteps == UINT64_MAX ? UINT64_MAX : Limits.MaxSteps - O.Steps;
    MS.StepsRetired = O.Steps;
    MS.SlicesRetired = 1;
    if (Pool.empty() || snapshot::serialize(CutCtx, CutVm, MS) != Pool.back())
      Pool.push_back(snapshot::serialize(CutCtx, CutVm, MS));
  }

  Rng Rand(Seed);
  for (uint64_t Round = 0; Round < Rounds; ++Round) {
    const std::vector<uint8_t> &Victim = Pool[Rand.below(Pool.size())];
    std::vector<uint8_t> M = Victim;
    switch (Rand.below(4)) {
    case 0: { // random byte flips
      const unsigned Flips = 1 + static_cast<unsigned>(Rand.below(8));
      for (unsigned F = 0; F < Flips; ++F)
        M[Rand.below(M.size())] ^= static_cast<uint8_t>(1 + Rand.below(255));
      break;
    }
    case 1: // truncation (possibly to nothing)
      M.resize(Rand.below(M.size()));
      break;
    case 2: { // junk extension
      const unsigned Extra = 1 + static_cast<unsigned>(Rand.below(16));
      for (unsigned X = 0; X < Extra; ++X)
        M.push_back(static_cast<uint8_t>(Rand.below(256)));
      break;
    }
    case 3: { // zeroed span (may be a no-op on already-zero bytes)
      const size_t Off = Rand.below(M.size());
      const size_t Len = std::min<size_t>(8, M.size() - Off);
      std::fill(M.begin() + Off, M.begin() + Off + Len, 0);
      break;
    }
    }

    // Both entry points must hold: the header decoder on its own, and the
    // full restore into fresh objects. Typed rejection or byte-identical
    // acceptance are the only legal outcomes; crashing or corrupting
    // state is what the sanitizer jobs would turn into a hard failure.
    ++R.Points;
    snapshot::SnapshotHeader H;
    (void)snapshot::readHeader(M.data(), M.size(), H);
    Vm V(0);
    ExecContext C(Sys.Prog, V);
    snapshot::MachineState MS;
    snapshot::SnapshotError Err =
        snapshot::restore(M.data(), M.size(), Sys.Prog, C, V, MS);
    if (Err == snapshot::SnapshotError::None && M != Victim)
      foldFailure(R, "fuzz round " + std::to_string(Round),
                  "restore accepted a corrupted snapshot");
  }
  return R;
}

EngineObservation sc::harness::replayTrace(const Code &Prog,
                                           const snapshot::ReplayTrace &T,
                                           EngineId E,
                                           snapshot::SnapshotError *OutErr) {
  EngineObservation Obs;
  Vm Machine(0);
  ExecContext Ctx(Prog, Machine);
  snapshot::MachineState MS;
  snapshot::SnapshotError Err = snapshot::restore(
      T.Checkpoint.data(), T.Checkpoint.size(), Prog, Ctx, Machine, MS);
  if (OutErr)
    *OutErr = Err;
  if (Err != snapshot::SnapshotError::None)
    return Obs;

  EngineRunner Runner(Prog);
  uint64_t Steps = MS.StepsRetired;
  uint32_t Pc = MS.Pc;
  // An empty schedule replays to the checkpoint itself: a preempted stop
  // at the restored PC.
  RunOutcome O;
  O.Status = RunStatus::StepLimit;
  O.Fault.Pc = Pc;
  for (uint64_t Budget : T.SliceBudgets) {
    EngineId Use = E;
    // Whole-slice leader fallback, exactly as VmSession schedules it, so
    // a replay is a deterministic function of (checkpoint, budgets,
    // engine).
    if (isStaticEngine(E) && !Runner.canEnter(E, Pc))
      Use = EngineId::Switch;
    Ctx.MaxSteps = Budget;
    O = Runner.run(Ctx, Use, Pc);
    Steps += O.Steps;
    if (O.Status != RunStatus::StepLimit)
      break;
    Pc = O.Fault.Pc;
    Ctx.Resume = true;
  }
  O.Steps = Steps;
  return snapshotObservation(Ctx, Machine, O);
}

InjectReport sc::harness::sweepSlicedFaults(const forth::System &Sys,
                                            const std::string &Word,
                                            const RunLimits &Limits,
                                            uint64_t SliceSteps) {
  InjectReport R;
  const uint32_t Entry = Sys.entryOf(Word);
  EngineObservation Full =
      observeEngine(Sys, Sys.Prog, Entry, EngineId::Switch, Limits);
  const uint64_t Total = Full.Outcome.Steps;

  auto CheckAllEngines = [&](const RunLimits &L, const std::string &Where) {
    for (unsigned E = 0; E < NumEngines; ++E) {
      EngineId Id = static_cast<EngineId>(E);
      checkSliced(observeEngine(Sys, Sys.Prog, Entry, Id, L),
                  observeEngineSliced(Sys, Sys.Prog, Entry, {Id}, SliceSteps,
                                      L),
                  Id, Where, R);
    }
  };

  // Step-limit axis: a preempted run must hit the overall budget at the
  // same point, with the same recorded fault, as an uninterrupted run.
  for (uint64_t M = 0; M <= Total; ++M) {
    RunLimits L = Limits;
    L.MaxSteps = M;
    CheckAllEngines(L, "MaxSteps=" + std::to_string(M));
  }

  // Capacity axis: overflow traps must land identically when the run is
  // preempted on the way there.
  auto Peak = [&](unsigned RunLimits::*Field, unsigned Cap) {
    return static_cast<unsigned>(
        bisectSmallest(0, Cap, [&](uint64_t C) {
          RunLimits L = Limits;
          L.*Field = static_cast<unsigned>(C);
          return sameResult(
              observeEngine(Sys, Sys.Prog, Entry, EngineId::Switch, L), Full);
        }));
  };
  const unsigned PeakDs = Peak(&RunLimits::DsCapacity, Limits.DsCapacity);
  for (unsigned C = 0; C < PeakDs; ++C) {
    RunLimits L = Limits;
    L.DsCapacity = C;
    CheckAllEngines(L, "DsCapacity=" + std::to_string(C));
  }
  const unsigned PeakRs = Peak(&RunLimits::RsCapacity, Limits.RsCapacity);
  for (unsigned C = 0; C < PeakRs; ++C) {
    RunLimits L = Limits;
    L.RsCapacity = C;
    CheckAllEngines(L, "RsCapacity=" + std::to_string(C));
  }
  return R;
}
