//===-- trace/Simulators.cpp - Trace-driven cache simulators --------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "trace/Simulators.h"

#include "cache/Reconcile.h"
#include "metrics/Counters.h"
#include "support/Assert.h"

using namespace sc;
using namespace sc::cache;
using namespace sc::trace;
using vm::OpKind;
using vm::Opcode;

ProgramStats sc::trace::fig20Stats(const Trace &T) {
  ProgramStats S;
  S.Insts = T.size();
  if (S.Insts == 0)
    return S;
  uint64_t Loads = 0, Stores = 0, Updates = 0, Calls = 0;
  for (const TraceRec &R : T.Recs) {
    vm::StackEffect E = vm::dataEffect(R.Op);
    Loads += E.In;
    Stores += E.Out;
    Updates += E.In != E.Out ? 1 : 0;
    Calls += R.Op == Opcode::Call ? 1 : 0;
  }
  double N = static_cast<double>(S.Insts);
  S.LoadsPerInst = static_cast<double>(Loads) / N;
  S.StoresPerInst = static_cast<double>(Stores) / N;
  S.SpUpdatesPerInst = static_cast<double>(Updates) / N;
  S.RLoadsPerInst = static_cast<double>(T.RStackLoads) / N;
  S.RUpdatesPerInst = static_cast<double>(T.RStackUpdates) / N;
  S.CallsPerInst = static_cast<double>(Calls) / N;
  return S;
}

Counts sc::trace::simulateConstantK(const Trace &T, unsigned K,
                                    metrics::Counters *Stats) {
  (void)Stats;
  Counts Total;
  uint64_t StackDepth = 0;
  for (const TraceRec &R : T.Recs) {
    vm::StackEffect E = vm::dataEffect(R.Op);
    SC_IF_STATS(if (Stats) metrics::noteCachedDispatch(
                    *Stats, R.Op,
                    StackDepth < K ? static_cast<unsigned>(StackDepth) : K,
                    K));
    Total += applyEffectConstantK(K, StackDepth, E.In, E.Out);
    StackDepth += E.Out;
    StackDepth -= E.In;
    ++Total.Insts;
    ++Total.Dispatches;
  }
  return Total;
}

Counts sc::trace::simulateDynamic(const Trace &T, const MinimalPolicy &P,
                                  metrics::Counters *Stats) {
  (void)Stats;
  Counts Total;
  unsigned Depth = 0;
  for (const TraceRec &R : T.Recs) {
    vm::StackEffect E = vm::dataEffect(R.Op);
    SC_IF_STATS(if (Stats) metrics::noteCachedDispatch(*Stats, R.Op, Depth,
                                                       P.NumRegs));
    Total += applyEffectMinimal(Depth, E.In, E.Out, P);
    ++Total.Insts;
    ++Total.Dispatches;
  }
  return Total;
}

RandomWalkReport sc::trace::analyzeRandomWalk(const Trace &T,
                                              const MinimalPolicy &P) {
  RandomWalkReport Rep;
  unsigned Depth = 0;
  bool LastEventWasOverflow = false;
  for (const TraceRec &R : T.Recs) {
    vm::StackEffect E = vm::dataEffect(R.Op);
    Counts C = applyEffectMinimal(Depth, E.In, E.Out, P);
    if (C.Overflows) {
      ++Rep.Overflows;
      if (LastEventWasOverflow)
        ++Rep.ReOverflows;
      LastEventWasOverflow = true;
    } else if (C.Underflows) {
      ++Rep.Underflows;
      LastEventWasOverflow = false;
    }
  }
  return Rep;
}

namespace {

/// The working state of the static-caching simulator: an explicit slot
/// vector (shuffles and duplications allowed) over NumRegs registers.
class StaticSim {
  const StaticPolicy &P;
  CacheState State;
  CacheState Canonical;
  Counts Total;
  metrics::Counters *Stats;

public:
  explicit StaticSim(const StaticPolicy &Pol,
                     metrics::Counters *TheStats = nullptr)
      : P(Pol), Canonical(CacheState::minimal(Pol.CanonicalDepth)),
        Stats(TheStats) {
    SC_ASSERT(Pol.CanonicalDepth <= Pol.NumRegs, "canonical out of range");
    State = Canonical; // words start in the canonical state
  }

  const Counts &counts() const { return Total; }

  void run(const Trace &T) {
    bool PrevWasControl = true; // treat entry like a fresh block
    for (const TraceRec &R : T.Recs) {
      // Fall-through into a block leader: the instruction before the
      // target reconciles to the canonical state (Section 5's control
      // flow convention); branches do it themselves below.
      if (R.isLeader() && !PrevWasControl)
        reconcileToCanonical();

      bool Control = vm::isControl(R.Op);
      execute(R.Op);
      if (Control)
        reconcileToCanonical(); // merged into the branch: no dispatch

      PrevWasControl = Control;
    }
  }

private:
  void reconcileToCanonical() {
    Counts C = reconcile(State, Canonical);
    SC_IF_STATS(if (Stats) {
      Stats->ReconcileLoads += C.Loads;
      Stats->ReconcileStores += C.Stores;
      Stats->ReconcileMoves += C.Moves;
    });
    Total += C;
    State = Canonical;
  }

  unsigned freeRegs() const {
    return P.NumRegs - static_cast<unsigned>(__builtin_popcount(
                           State.regMask() & ((1u << P.NumRegs) - 1)));
  }

  void execute(Opcode Op) {
    ++Total.Insts;
    vm::StackEffect E = vm::dataEffect(Op);

    // Stack manipulations become pure state changes - no dispatch, no
    // code at all - when their arguments are cached and the register
    // file can hold the result (Section 5: "stack manipulations can be
    // optimized away completely").
    if (P.AbsorbManips && isAbsorbableManip(Op) && State.depth() >= E.In &&
        State.depth() - E.In + E.Out <= P.NumRegs + 1) {
      CacheState NewState = applyManipToState(State, Op);
      if (NewState.regsUsed() <= P.NumRegs) {
        State = NewState;
        return; // optimized away: no Total.Dispatches increment
      }
    }

    ++Total.Dispatches;
    SC_IF_STATS(if (Stats) metrics::noteCachedDispatch(*Stats, Op,
                                                       State.depth(),
                                                       P.NumRegs));
    bool MemTouched = false;

    // Consume inputs. Deeper-than-cached arguments are loaded directly by
    // the state-specialized implementation (underflow fill).
    unsigned FromRegs = E.In < State.depth() ? E.In : State.depth();
    for (unsigned I = 0; I < FromRegs; ++I)
      State.popTop();
    if (E.In > FromRegs) {
      Total.Loads += E.In - FromRegs;
      ++Total.Underflows;
      MemTouched = true;
    }

    // Produce outputs into free registers; spill the deepest cached items
    // when the register file is exhausted. The canonical state serves as
    // the overflow followup, as in the paper's evaluation. Outputs beyond
    // the register file (possible only for tiny files) go to memory.
    unsigned ToRegs = E.Out < P.NumRegs ? E.Out : P.NumRegs;
    if (E.Out > ToRegs) {
      Total.Stores += E.Out - ToRegs;
      MemTouched = true;
    }
    if (freeRegs() < ToRegs) {
      ++Total.Overflows;
      unsigned Target =
          P.CanonicalDepth > ToRegs ? P.CanonicalDepth : ToRegs;
      while ((State.depth() + ToRegs > Target || freeRegs() < ToRegs) &&
             State.depth() > 0) {
        State.dropBottom();
        ++Total.Stores;
      }
      MemTouched = true;
    }
    for (unsigned I = 0; I < ToRegs; ++I) {
      // Lowest-numbered free register; reconciliation at block ends pays
      // for any deviation from the canonical layout.
      unsigned R = 0;
      uint32_t Mask = State.regMask();
      while (R < P.NumRegs && (Mask & (1u << R)))
        ++R;
      SC_ASSERT(R < P.NumRegs, "no free register after spilling");
      State.pushReg(static_cast<RegId>(R));
    }

    if (MemTouched)
      ++Total.SpUpdates;
  }
};

} // namespace

Counts sc::trace::simulateStatic(const Trace &T, const StaticPolicy &P,
                                 metrics::Counters *Stats) {
  StaticSim Sim(P, metrics::statsEnabled() ? Stats : nullptr);
  Sim.run(T);
  return Sim.counts();
}

namespace {

/// The combined data/return cache of the two-stack organization: data
/// depth D and return depth R share NumRegs registers (R <= MaxRetCached,
/// D + R <= NumRegs), both stacks bottom-anchored minimal.
class TwoStackSim {
  const TwoStackPolicy &P;
  unsigned D = 0; ///< cached data items
  unsigned R = 0; ///< cached return items
  Counts Total;

public:
  explicit TwoStackSim(const TwoStackPolicy &Pol) : P(Pol) {
    SC_ASSERT(Pol.MaxRetCached <= 2, "two-stack organization caches <= 2");
    SC_ASSERT(Pol.DataOverflowDepth <= Pol.NumRegs, "bad followup");
  }

  const Counts &counts() const { return Total; }

  void run(const Trace &T, metrics::Counters *Stats) {
    (void)Stats;
    for (const TraceRec &Rec : T.Recs) {
      ++Total.Insts;
      ++Total.Dispatches;
      SC_IF_STATS(if (Stats) metrics::noteCachedDispatch(
                      *Stats, Rec.Op, D, P.NumRegs - R));
      vm::StackEffect E = vm::dataEffect(Rec.Op);
      applyData(E.In, E.Out);
      applyRet(Rec);
    }
  }

private:
  /// Data-stack side: the minimal-organization transition with the
  /// capacity reduced by the cached return items.
  void applyData(unsigned In, unsigned Out) {
    unsigned Cap = P.NumRegs - R;
    if (D < In) {
      ++Total.Underflows;
      Total.Loads += In - D;
      unsigned NewD = Out <= Cap ? Out : Cap;
      Total.Stores += Out - NewD;
      ++Total.SpUpdates;
      D = NewD;
      return;
    }
    unsigned DPrime = D - In + Out;
    if (DPrime <= Cap) {
      D = DPrime;
      return;
    }
    ++Total.Overflows;
    unsigned F = P.DataOverflowDepth < Cap ? P.DataOverflowDepth : Cap;
    Total.Stores += DPrime - F;
    Total.Moves += F > Out ? F - Out : 0;
    ++Total.SpUpdates;
    D = F;
  }

  bool haveRoom() const { return R < P.MaxRetCached && D + R < P.NumRegs; }

  void rpush(unsigned K) {
    for (unsigned I = 0; I < K; ++I) {
      if (haveRoom()) {
        ++R;
        continue;
      }
      // No room: flush the deepest cached return item (keeping the top
      // of the return stack cached), or store directly when none is.
      if (R > 0) {
        ++Total.Stores;
        Total.Moves += R - 1;
        ++Total.SpUpdates;
      } else {
        ++Total.Stores;
        ++Total.SpUpdates;
      }
    }
  }

  void rpop(unsigned K) {
    unsigned FromRegs = K < R ? K : R;
    R -= FromRegs;
    unsigned FromMem = K - FromRegs;
    if (FromMem) {
      Total.Loads += FromMem;
      ++Total.SpUpdates;
    }
  }

  void rpeek(unsigned Depth) {
    // Items deeper than the cached part are read from memory.
    if (Depth > R)
      Total.Loads += Depth - R;
  }

  void rdrop(unsigned K, bool ReadFirst) {
    if (ReadFirst)
      rpeek(K);
    unsigned FromRegs = K < R ? K : R;
    R -= FromRegs;
    if (K > FromRegs)
      ++Total.SpUpdates; // memory part shrinks
  }

  void applyRet(const TraceRec &Rec) {
    using vm::Opcode;
    switch (Rec.Op) {
    case Opcode::ToR:
    case Opcode::Call:
      rpush(1);
      break;
    case Opcode::DoSetup:
      rpush(2);
      break;
    case Opcode::RFrom:
    case Opcode::Exit:
      rpop(1);
      break;
    case Opcode::RFetch:
    case Opcode::LoopI:
      rpeek(1);
      break;
    case Opcode::LoopJ:
      rpeek(3);
      break;
    case Opcode::Unloop:
      rdrop(2, /*ReadFirst=*/false);
      break;
    case Opcode::LoopBr:
    case Opcode::PlusLoopBr:
      if (Rec.movedRsp()) {
        rdrop(2, /*ReadFirst=*/true); // exit: compare, then discard
      } else {
        // Back edge: read index and limit, write the index back.
        rpeek(2);
        if (R == 0)
          ++Total.Stores; // index lives in memory
      }
      break;
    default:
      break;
    }
  }
};

} // namespace

Counts sc::trace::simulateTwoStack(const Trace &T, const TwoStackPolicy &P,
                                   metrics::Counters *Stats) {
  TwoStackSim Sim(P);
  Sim.run(T, Stats);
  return Sim.counts();
}

Counts sc::trace::simulatePrefetch(const Trace &T, const PrefetchPolicy &P,
                                   metrics::Counters *Stats) {
  (void)Stats;
  SC_ASSERT(P.MinDepth <= P.NumRegs, "minimum depth out of range");
  SC_ASSERT(P.OverflowFollowupDepth <= P.NumRegs, "followup out of range");
  Counts Total;
  unsigned Depth = 0; ///< cached items
  unsigned Clean = 0; ///< deepest Clean items mirror memory (prefetched)
  uint64_t StackDepth = 0; ///< logical stack depth (bounds prefetching)

  for (const TraceRec &Rec : T.Recs) {
    ++Total.Insts;
    ++Total.Dispatches;
    SC_IF_STATS(if (Stats) metrics::noteCachedDispatch(*Stats, Rec.Op, Depth,
                                                       P.NumRegs));
    vm::StackEffect E = vm::dataEffect(Rec.Op);
    unsigned In = E.In, Out = E.Out;

    bool MemTouched = false;
    if (Depth < In) {
      // Underflow fill: the missing arguments arrive from memory, clean.
      ++Total.Underflows;
      Total.Loads += In - Depth;
      Clean += In - Depth; // fills arrive below the cached items, clean
      Depth = In;
      MemTouched = true;
    }
    unsigned DPrime = Depth - In + Out;
    if (Depth - In < Clean)
      Clean = Depth - In; // pops consumed part of the clean prefix
    if (DPrime > P.NumRegs) {
      // Overflow: spill down to the followup state; clean items need no
      // store when dirtiness is tracked.
      ++Total.Overflows;
      unsigned F = P.OverflowFollowupDepth;
      unsigned Spill = DPrime - F;
      unsigned SpillSurvivors = Spill < Depth - In ? Spill : Depth - In;
      unsigned CleanSpilled =
          P.DirtyBits ? (SpillSurvivors < Clean ? SpillSurvivors : Clean)
                      : 0;
      Total.Stores += Spill - CleanSpilled;
      Total.Moves += F > Out ? F - Out : 0;
      Clean -= SpillSurvivors < Clean ? SpillSurvivors : Clean;
      Depth = F;
      MemTouched = true;
    } else {
      Depth = DPrime;
    }

    StackDepth += Out;
    StackDepth -= In;

    // Prefetch back up to the minimum depth (bounded by what exists).
    if (Depth < P.MinDepth) {
      uint64_t Available = StackDepth - Depth;
      unsigned Want = P.MinDepth - Depth;
      unsigned Fetch =
          Available < Want ? static_cast<unsigned>(Available) : Want;
      if (Fetch > 0) {
        Total.Loads += Fetch;
        Clean += Fetch;
        Depth += Fetch;
        MemTouched = true;
      }
    }
    if (MemTouched)
      ++Total.SpUpdates;
  }
  return Total;
}
