//===-- trace/Trace.h - Executed-instruction traces ------------*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates stack caching by instrumenting a Forth system and
/// replaying the collected instruction streams under different cache
/// organizations (Section 6). Trace is our equivalent: one record per
/// executed virtual machine instruction, plus the return-stack aggregate
/// counters needed for Fig. 20.
///
//===----------------------------------------------------------------------===//

#ifndef SC_TRACE_TRACE_H
#define SC_TRACE_TRACE_H

#include "vm/Opcode.h"

#include <cstdint>
#include <vector>

namespace sc::trace {

/// One executed instruction.
struct TraceRec {
  vm::Opcode Op;
  uint8_t Flags;

  static constexpr uint8_t LeaderFlag = 1; ///< starts a basic block
  /// The instruction moved the return stack pointer. Per-opcode return
  /// stack behaviour is otherwise static; this single dynamic bit
  /// distinguishes a loop back-edge (peek+update) from a loop exit
  /// (drop both parameters).
  static constexpr uint8_t RMovedFlag = 2;

  bool isLeader() const { return (Flags & LeaderFlag) != 0; }
  bool movedRsp() const { return (Flags & RMovedFlag) != 0; }
};

/// A full execution trace.
struct Trace {
  std::vector<TraceRec> Recs;

  // Return-stack aggregates (Fig. 20's rloads / rupdates columns).
  uint64_t RStackStores = 0;  ///< cells written to return-stack memory
  uint64_t RStackLoads = 0;   ///< cells read from return-stack memory
  uint64_t RStackUpdates = 0; ///< instructions that moved the return sp

  /// Executions per static instruction site, indexed like Code::Insts
  /// (Section 6's instance-frequency distribution: "10% account for 90%
  /// of the executed instructions").
  std::vector<uint64_t> SiteCounts;

  uint64_t size() const { return Recs.size(); }
};

} // namespace sc::trace

#endif // SC_TRACE_TRACE_H
