//===-- trace/Simulators.h - Trace-driven cache simulators -----*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace-driven evaluations of Section 6:
///
///  * fig20Stats          - per-program characteristics (Fig. 20)
///  * simulateConstantK   - constant number of items in registers (Fig. 21)
///  * simulateDynamic     - dynamic caching, minimal organization, chosen
///                          overflow followup state (Figs. 22/23)
///  * simulateStatic      - static caching with canonical-state control
///                          flow and calling conventions, manipulations
///                          optimized away (Figs. 24/25)
///  * analyzeRandomWalk   - overflow/underflow sequencing statistics used
///                          to test the [HS85] random-walk model
///
//===----------------------------------------------------------------------===//

#ifndef SC_TRACE_SIMULATORS_H
#define SC_TRACE_SIMULATORS_H

#include "cache/CostModel.h"
#include "cache/Transition.h"
#include "trace/Trace.h"

namespace sc::metrics {
struct Counters;
} // namespace sc::metrics

namespace sc::trace {

/// The columns of Fig. 20.
struct ProgramStats {
  uint64_t Insts = 0;
  double LoadsPerInst = 0;    ///< operand loads in a cache-less interpreter
  double StoresPerInst = 0;   ///< operand stores (aggregate ~= loads)
  double SpUpdatesPerInst = 0;
  double RLoadsPerInst = 0;
  double RUpdatesPerInst = 0;
  double CallsPerInst = 0;
};

/// Computes Fig. 20's per-program characteristics from a trace.
ProgramStats fig20Stats(const Trace &T);

/// Simulates keeping exactly \p K top-of-stack items in registers.
///
/// All simulators below accept an optional engine-counters sink: when the
/// build has SC_STATS and \p Stats is non-null, per-opcode dispatch counts,
/// cache-occupancy buckets and overflow/underflow events are recorded
/// there as well. Without SC_STATS the parameter is ignored (zero cost).
cache::Counts simulateConstantK(const Trace &T, unsigned K,
                                metrics::Counters *Stats = nullptr);

/// Simulates dynamic stack caching over the minimal organization.
cache::Counts simulateDynamic(const Trace &T, const cache::MinimalPolicy &P,
                              metrics::Counters *Stats = nullptr);

/// Policy for the static stack caching simulator.
struct StaticPolicy {
  unsigned NumRegs = 4;
  /// The canonical state's depth: code is in minimal(CanonicalDepth) at
  /// every basic-block boundary, call and return (the x axis of Fig. 24).
  unsigned CanonicalDepth = 0;
  /// If false, stack manipulations execute like any other instruction
  /// (for the ablation bench); if true they are absorbed into cache-state
  /// changes whenever their arguments are cached and the register file
  /// can represent the result.
  bool AbsorbManips = true;
};

/// Simulates static stack caching. Counts.Dispatches excludes the
/// manipulations that were optimized away; Counts.Insts counts all
/// original instructions.
cache::Counts simulateStatic(const Trace &T, const StaticPolicy &P,
                             metrics::Counters *Stats = nullptr);

/// Overflow/underflow sequencing statistics (Section 6's examination of
/// the [HS85] random-walk model).
struct RandomWalkReport {
  uint64_t Overflows = 0;
  uint64_t Underflows = 0;
  /// Overflows followed by another overflow before any underflow: the
  /// random-walk model predicts many of these for rather-full followup
  /// states; real programs show very few ("a very strong tendency to go
  /// down after going up").
  uint64_t ReOverflows = 0;
};

/// Runs the dynamic simulator and reports the overflow/underflow
/// sequencing.
RandomWalkReport analyzeRandomWalk(const Trace &T,
                                   const cache::MinimalPolicy &P);

/// Policy for the two-stack cache (Fig. 18's sixth organization, which
/// the paper tabulates but does not evaluate): the data stack's minimal
/// organization shares the register file with up to MaxRetCached return
/// stack items, also organized minimally.
struct TwoStackPolicy {
  unsigned NumRegs = 4;
  unsigned DataOverflowDepth = 2; ///< data-cache overflow followup
  unsigned MaxRetCached = 2;      ///< 0 disables return-stack caching
};

/// Simulates the combined data/return stack cache. With MaxRetCached = 0
/// this degenerates to simulateDynamic plus the memory cost of every
/// return stack access - the baseline the shared organization is
/// compared against. Counts include return-stack loads/stores/updates.
cache::Counts simulateTwoStack(const Trace &T, const TwoStackPolicy &P,
                               metrics::Counters *Stats = nullptr);

/// Policy for the stack-item prefetching variant of Section 3.6: states
/// with fewer than MinDepth cached items are forbidden, so the cache
/// refills eagerly after popping instructions. Prefetched-but-unmodified
/// items need not be stored back on overflow when the cache tracks
/// dirtiness ("corresponding to dirty bits in hardware caches").
struct PrefetchPolicy {
  unsigned NumRegs = 4;
  unsigned OverflowFollowupDepth = 2;
  unsigned MinDepth = 0;  ///< 0 disables prefetching (plain minimal org)
  bool DirtyBits = false; ///< skip stores of clean (prefetched) items
};

/// Simulates dynamic caching with prefetching. With MinDepth = 0 and
/// DirtyBits = false this equals simulateDynamic.
cache::Counts simulatePrefetch(const Trace &T, const PrefetchPolicy &P,
                               metrics::Counters *Stats = nullptr);

} // namespace sc::trace

#endif // SC_TRACE_SIMULATORS_H
