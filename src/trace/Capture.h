//===-- trace/Capture.h - Trace capture ------------------------*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Captures an execution trace by running the (switch-dispatch) reference
/// engine with a recording tracer. Executes against a copy of the
/// system's machine state, like forth::System::runIsolated.
///
//===----------------------------------------------------------------------===//

#ifndef SC_TRACE_CAPTURE_H
#define SC_TRACE_CAPTURE_H

#include "forth/Forth.h"
#include "trace/Trace.h"

#include <string>

namespace sc::trace {

/// Runs word \p Name of \p Sys under the instrumented reference engine
/// and returns the trace. Aborts if the run does not halt cleanly.
Trace captureTrace(const forth::System &Sys, const std::string &Name,
                   uint64_t MaxSteps = UINT64_MAX);

} // namespace sc::trace

#endif // SC_TRACE_CAPTURE_H
