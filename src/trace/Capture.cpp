//===-- trace/Capture.cpp - Trace capture ---------------------------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "trace/Capture.h"

#include "dispatch/SwitchEngineImpl.h"
#include "support/Assert.h"

#include <cstdio>

using namespace sc;
using namespace sc::trace;
using namespace sc::vm;

namespace {

/// Records one TraceRec per executed instruction plus the return-stack
/// aggregates.
class RecordingTracer {
  Trace &Out;
  const std::vector<bool> &Leaders;

public:
  RecordingTracer(Trace &Out, const std::vector<bool> &Leaders)
      : Out(Out), Leaders(Leaders) {}

  void onInst(uint32_t Ip, Opcode Op) {
    TraceRec R;
    R.Op = Op;
    R.Flags = Leaders[Ip] ? TraceRec::LeaderFlag : 0;
    Out.Recs.push_back(R);
    ++Out.SiteCounts[Ip];
  }

  void onRTraffic(unsigned Stores, unsigned Loads, bool SpMoved) {
    Out.RStackStores += Stores;
    Out.RStackLoads += Loads;
    Out.RStackUpdates += SpMoved ? 1 : 0;
    if (SpMoved && !Out.Recs.empty())
      Out.Recs.back().Flags |= TraceRec::RMovedFlag;
  }
};

} // namespace

Trace sc::trace::captureTrace(const forth::System &Sys,
                              const std::string &Name, uint64_t MaxSteps) {
  const Word *W = Sys.Prog.findWord(Name);
  SC_ASSERT(W, "word not found");
  std::vector<bool> Leaders = Sys.Prog.computeLeaders();

  Vm Copy = Sys.Machine;
  Copy.resetOutput();
  ExecContext Ctx(Sys.Prog, Copy);
  Ctx.MaxSteps = MaxSteps;

  Trace T;
  T.SiteCounts.assign(Sys.Prog.Insts.size(), 0);
  RecordingTracer Tr(T, Leaders);
  RunOutcome O = dispatch::runSwitchImpl(Ctx, W->Entry, Tr);
  if (O.Status != RunStatus::Halted) {
    std::fprintf(stderr, "trace capture of '%s' failed: %s\n", Name.c_str(),
                 runStatusName(O.Status));
    sc::fatalError("trace capture did not halt");
  }
  return T;
}
