//===-- regvm/RegTranslate.cpp - Stack-to-register translation ------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
//
// The abstract-stack pass. Each basic block is walked with a symbolic
// stack of slots (virtual register / folded constant / architectural
// entry cell); operations pop and push slots instead of cells, so pure
// stack manipulations reduce to slot shuffles and literals ride along as
// constants until a real computation consumes them. Control transfers
// reconcile: the symbolic state is rendered into a "flush plan" that
// rewrites the architectural stack to what the stack machine would hold,
// executed on the block's exit edges and at traps.
//
// Trap equivalence is the load-bearing property. Every stack-limit check
// a dissolved or folded op would have performed is re-emitted as an
// explicit check instruction *at that op's position* against the block's
// entry depth (the physical stack pointer does not move inside a block),
// eliminated only when a previous check in the same block established a
// bound that covers it — which is exactly the condition under which the
// check can never fire. Underflow checks bound the entry depth D0 from
// below (D0 >= n - h), overflow checks from above (D0 + h + n <= cap);
// both bounds are block invariants, so the per-block maxima MaxU/MaxO
// justify the elimination. The same bounds prove the memory safety of
// entry-cell reads (index < D0) and flush writes (final depth <= cap),
// so the regvm engine needs no stack slack and never defers a trap.
//
//===----------------------------------------------------------------------===//

#include "regvm/RegVm.h"

#include "support/Assert.h"
#include "vm/ArithOps.h"

#include <map>
#include <utility>

using namespace sc;
using namespace sc::regvm;
using namespace sc::vm;

namespace {

/// RegOp for a two-operand arithmetic/logic opcode.
RegOp binRegOp(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return RvAdd;
  case Opcode::Sub:
    return RvSub;
  case Opcode::Mul:
    return RvMul;
  case Opcode::Div:
    return RvDiv;
  case Opcode::Mod:
    return RvMod;
  case Opcode::And:
    return RvAnd;
  case Opcode::Or:
    return RvOr;
  case Opcode::Xor:
    return RvXor;
  case Opcode::Lshift:
    return RvLshift;
  case Opcode::Rshift:
    return RvRshift;
  case Opcode::Min:
    return RvMin;
  case Opcode::Max:
    return RvMax;
  case Opcode::Eq:
    return RvEq;
  case Opcode::Ne:
    return RvNe;
  case Opcode::Lt:
    return RvLt;
  case Opcode::Gt:
    return RvGt;
  case Opcode::Le:
    return RvLe;
  case Opcode::Ge:
    return RvGe;
  case Opcode::ULt:
    return RvULt;
  default:
    sc::unreachable("not a binary opcode");
  }
}

/// RegOp for a one-operand arithmetic/logic opcode.
RegOp unRegOp(Opcode Op) {
  switch (Op) {
  case Opcode::Negate:
    return RvNegate;
  case Opcode::Invert:
    return RvInvert;
  case Opcode::Abs:
    return RvAbs;
  case Opcode::OnePlus:
    return RvOnePlus;
  case Opcode::OneMinus:
    return RvOneMinus;
  case Opcode::TwoStar:
    return RvTwoStar;
  case Opcode::TwoSlash:
    return RvTwoSlash;
  case Opcode::Cells:
    return RvCells;
  case Opcode::ZeroEq:
    return RvZeroEq;
  case Opcode::ZeroNe:
    return RvZeroNe;
  case Opcode::ZeroLt:
    return RvZeroLt;
  case Opcode::ZeroGt:
    return RvZeroGt;
  default:
    sc::unreachable("not a unary opcode");
  }
}

Cell evalBinop(Opcode Op, Cell A, Cell B) {
  switch (Op) {
  case Opcode::Add:
    return arithAdd(A, B);
  case Opcode::Sub:
    return arithSub(A, B);
  case Opcode::Mul:
    return arithMul(A, B);
  case Opcode::Div:
    return arithDiv(A, B);
  case Opcode::Mod:
    return arithMod(A, B);
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Lshift:
    return arithLshift(A, B);
  case Opcode::Rshift:
    return arithRshift(A, B);
  case Opcode::Min:
    return A < B ? A : B;
  case Opcode::Max:
    return A > B ? A : B;
  case Opcode::Eq:
    return boolCell(A == B);
  case Opcode::Ne:
    return boolCell(A != B);
  case Opcode::Lt:
    return boolCell(A < B);
  case Opcode::Gt:
    return boolCell(A > B);
  case Opcode::Le:
    return boolCell(A <= B);
  case Opcode::Ge:
    return boolCell(A >= B);
  case Opcode::ULt:
    return arithULt(A, B);
  default:
    sc::unreachable("not a binary opcode");
  }
}

Cell evalUnop(Opcode Op, Cell A) {
  switch (Op) {
  case Opcode::Negate:
    return arithNegate(A);
  case Opcode::Invert:
    return ~A;
  case Opcode::Abs:
    return arithAbs(A);
  case Opcode::OnePlus:
    return arithOnePlus(A);
  case Opcode::OneMinus:
    return arithOneMinus(A);
  case Opcode::TwoStar:
    return arithTwoStar(A);
  case Opcode::TwoSlash:
    return A >> 1;
  case Opcode::Cells:
    return arithCells(A);
  case Opcode::ZeroEq:
    return boolCell(A == 0);
  case Opcode::ZeroNe:
    return boolCell(A != 0);
  case Opcode::ZeroLt:
    return boolCell(A < 0);
  case Opcode::ZeroGt:
    return boolCell(A > 0);
  default:
    sc::unreachable("not a unary opcode");
  }
}

class Translator {
public:
  explicit Translator(const Code &P) : Prog(P) {}

  RegProgram run() {
    const uint32_t N = Prog.size();
    RP.OrigInsts = N;
    RP.OrigToReg.assign(N, InvalidReg);
    const std::vector<bool> Leaders = Prog.computeLeaders();
    bool Open = false;
    for (uint32_t Pc = 0; Pc < N; ++Pc) {
      if (Leaders[Pc]) {
        if (Open)
          syncInto(Pc); // fall-through join: reconcile before the leader
        startBlock(Pc);
        Open = true;
      }
      if (!Open)
        continue; // unreachable tail of a malformed program: no translation
      CurPc = Pc;
      Open = translateInst(Prog.Insts[Pc]);
    }
    for (const auto &Fix : Fixups) {
      SC_ASSERT(Fix.second < RP.OrigToReg.size() &&
                    RP.OrigToReg[Fix.second] != InvalidReg,
                "branch target is not a block leader");
      RP.Insts[Fix.first].W1 = static_cast<Cell>(RP.OrigToReg[Fix.second]);
    }
    // Entry markers: the first leader mapped to an index wins, so a run of
    // leaders that produced no instructions collapses onto one entry.
    for (const auto &Mark : EntryMarks)
      if (Mark.first < RP.EntryOrig.size() &&
          RP.EntryOrig[Mark.first] == InvalidReg)
        RP.EntryOrig[Mark.first] = Mark.second;
    return std::move(RP);
  }

private:
  /// One symbolic stack slot.
  struct ASlot {
    SlotTag K = SlotTag::Mem;
    uint32_t Idx = 0; ///< register index or entry-cell depth (0 = entry TOS)
    Cell C = 0;       ///< constant value when K == Const
  };

  const Code &Prog;
  RegProgram RP;

  std::map<std::vector<Cell>, uint32_t> PlanDedup;
  std::map<Cell, uint32_t> ConstDedup;
  /// (instruction index, original branch-target pc), resolved at the end.
  std::vector<std::pair<uint32_t, uint32_t>> Fixups;
  /// (instruction index, leader pc) recorded at block starts.
  std::vector<std::pair<uint32_t, uint32_t>> EntryMarks;

  // Block-local abstract state: E is the symbolic stack above the entry
  // cells (back = TOS), Consumed the number of entry cells logically
  // popped. The physical stack pointer is frozen mid-block, so entry cell
  // k lives at Stack[Dsp - 1 - k] at run time.
  std::vector<ASlot> E;
  unsigned Consumed = 0;
  unsigned NextReg = 0;
  int MaxU = 0; ///< strongest underflow bound established in this block
  int MaxO = 0; ///< strongest overflow bound established in this block
  uint32_t CurPc = 0;
  bool HavePre = false;
  uint32_t PrePlanId = NoFlush;

  uint32_t size() const { return static_cast<uint32_t>(RP.Insts.size()); }
  int height() const {
    return static_cast<int>(E.size()) - static_cast<int>(Consumed);
  }

  void startBlock(uint32_t Leader) {
    E.clear();
    Consumed = 0;
    NextReg = 0;
    MaxU = 0;
    MaxO = 0;
    RP.OrigToReg[Leader] = size();
    EntryMarks.emplace_back(size(), Leader);
  }

  /// Called at the start of each (sub-)instruction: invalidates the
  /// cached pre-state plan.
  void beginOp() { HavePre = false; }

  uint32_t internConst(Cell V) {
    auto It = ConstDedup.find(V);
    if (It != ConstDedup.end())
      return It->second;
    const uint32_t Id = static_cast<uint32_t>(RP.ConstPool.size());
    RP.ConstPool.push_back(V);
    ConstDedup.emplace(V, Id);
    return Id;
  }

  Cell descOf(const ASlot &S) {
    switch (S.K) {
    case SlotTag::Reg:
      return encodeSlot(SlotTag::Reg, S.Idx);
    case SlotTag::Const:
      return encodeSlot(SlotTag::Const, internConst(S.C));
    case SlotTag::Mem:
      return encodeSlot(SlotTag::Mem, S.Idx);
    }
    sc::unreachable("bad slot tag");
  }

  /// Renders the current abstract state as a flush plan (deduplicated);
  /// the identity state needs no plan at all.
  uint32_t planNow() {
    const size_t N = E.size();
    if (N == Consumed) {
      bool Ident = true;
      for (size_t J = 0; J < N && Ident; ++J)
        Ident = E[J].K == SlotTag::Mem && E[J].Idx == N - 1 - J;
      if (Ident)
        return NoFlush;
    }
    std::vector<Cell> Key;
    Key.reserve(N + 2);
    Key.push_back(static_cast<Cell>(Consumed));
    Key.push_back(static_cast<Cell>(N));
    for (const ASlot &S : E)
      Key.push_back(descOf(S));
    auto It = PlanDedup.find(Key);
    if (It != PlanDedup.end())
      return It->second;
    const uint32_t Id = static_cast<uint32_t>(RP.FlushPool.size());
    RP.FlushPool.insert(RP.FlushPool.end(), Key.begin(), Key.end());
    if (N > RP.MaxFlushSlots)
      RP.MaxFlushSlots = static_cast<uint32_t>(N);
    PlanDedup.emplace(std::move(Key), Id);
    return Id;
  }

  /// Plan of the state before the current (sub-)instruction touched it.
  uint32_t prePlan() {
    if (!HavePre) {
      PrePlanId = planNow();
      HavePre = true;
    }
    return PrePlanId;
  }

  uint32_t emitI(RegOp H, Cell W1, Cell W2, Cell W3, uint32_t Pre,
                 uint32_t Post) {
    RegInst RI;
    RI.Handler = static_cast<uint16_t>(H);
    RI.W1 = W1;
    RI.W2 = W2;
    RI.W3 = W3;
    RP.Insts.push_back(RI);
    RP.RegToOrig.push_back(CurPc);
    RP.PreFlush.push_back(Pre);
    RP.PostFlush.push_back(Post);
    RP.EntryOrig.push_back(InvalidReg);
    return size() - 1;
  }

  // -- Checks ---------------------------------------------------------------

  /// SC_NEED(n) at the current point: traps unless entry depth >= n - h.
  void checkU(unsigned N) {
    const int T = static_cast<int>(N) - height();
    if (T <= 0 || T <= MaxU) {
      ++RP.ChecksEliminated;
      return;
    }
    emitI(RvCheckU, T, 0, 0, prePlan(), NoFlush);
    MaxU = T;
    ++RP.ChecksEmitted;
  }

  /// SC_ROOM(n) at the current point: traps unless entry depth + h + n
  /// fits the capacity.
  void checkO(unsigned N) {
    const int T = height() + static_cast<int>(N);
    if (T <= 0 || T <= MaxO) {
      ++RP.ChecksEliminated;
      return;
    }
    emitI(RvCheckO, T, 0, 0, prePlan(), NoFlush);
    MaxO = T;
    ++RP.ChecksEmitted;
  }

  // -- Abstract stack -------------------------------------------------------

  ASlot popSlot() {
    if (!E.empty()) {
      ASlot S = E.back();
      E.pop_back();
      return S;
    }
    ASlot S;
    S.K = SlotTag::Mem;
    S.Idx = Consumed++;
    return S;
  }

  void pushConst(Cell V) {
    ASlot S;
    S.K = SlotTag::Const;
    S.C = V;
    E.push_back(S);
  }

  uint32_t allocReg() {
    const uint32_t R = NextReg++;
    if (NextReg > RP.MaxRegs)
      RP.MaxRegs = NextReg;
    ++RP.RegsMaterialized;
    return R;
  }

  void pushReg(uint32_t R) {
    ASlot S;
    S.K = SlotTag::Reg;
    S.Idx = R;
    E.push_back(S);
  }

  // -- Per-opcode translation (check order mirrors InstBodies.inc) ----------

  void doLit(Cell V) {
    checkO(1);
    pushConst(V);
    ++RP.LitsAbsorbed;
  }

  void doBinop(Opcode Op) {
    checkU(2);
    const ASlot B = popSlot();
    const ASlot A = popSlot();
    const bool DivLike = Op == Opcode::Div || Op == Opcode::Mod;
    if (A.K == SlotTag::Const && B.K == SlotTag::Const &&
        (!DivLike || B.C != 0)) {
      pushConst(evalBinop(Op, A.C, B.C));
      ++RP.ConstsFolded;
      return;
    }
    // Div/Mod trap after consuming their operands (InstBodies.inc).
    const uint32_t Post = DivLike ? planNow() : NoFlush;
    const Cell DA = descOf(A);
    const Cell DB = descOf(B);
    const uint32_t R = allocReg();
    emitI(binRegOp(Op), static_cast<Cell>(R), DA, DB, NoFlush, Post);
    pushReg(R);
  }

  void doUnop(Opcode Op) {
    checkU(1);
    const ASlot A = popSlot();
    if (A.K == SlotTag::Const) {
      pushConst(evalUnop(Op, A.C));
      ++RP.ConstsFolded;
      return;
    }
    const Cell DA = descOf(A);
    const uint32_t R = allocReg();
    emitI(unRegOp(Op), static_cast<Cell>(R), DA, 0, NoFlush, NoFlush);
    pushReg(R);
  }

  void doFetch(RegOp H) { // RvFetch / RvCFetch
    checkU(1);
    const ASlot Addr = popSlot();
    const uint32_t Post = planNow(); // address consumed, result not pushed
    const Cell DA = descOf(Addr);
    const uint32_t R = allocReg();
    emitI(H, static_cast<Cell>(R), DA, 0, NoFlush, Post);
    pushReg(R);
  }

  void doStore(RegOp H) { // RvStore / RvCStore / RvPlusStore
    checkU(2);
    const ASlot Addr = popSlot();
    const ASlot V = popSlot();
    const uint32_t Post = planNow();
    emitI(H, 0, descOf(Addr), descOf(V), NoFlush, Post);
  }

  void doManip(Opcode Op) {
    switch (Op) {
    case Opcode::Dup: {
      checkU(1);
      checkO(1);
      const ASlot A = popSlot();
      E.push_back(A);
      E.push_back(A);
      break;
    }
    case Opcode::Drop: {
      checkU(1);
      (void)popSlot();
      break;
    }
    case Opcode::Swap: {
      checkU(2);
      const ASlot B = popSlot();
      const ASlot A = popSlot();
      E.push_back(B);
      E.push_back(A);
      break;
    }
    case Opcode::Over: {
      checkU(2);
      checkO(1);
      const ASlot B = popSlot();
      const ASlot A = popSlot();
      E.push_back(A);
      E.push_back(B);
      E.push_back(A);
      break;
    }
    case Opcode::Rot: {
      checkU(3);
      const ASlot C = popSlot();
      const ASlot B = popSlot();
      const ASlot A = popSlot();
      E.push_back(B);
      E.push_back(C);
      E.push_back(A);
      break;
    }
    case Opcode::Nip: {
      checkU(2);
      const ASlot B = popSlot();
      (void)popSlot();
      E.push_back(B);
      break;
    }
    case Opcode::Tuck: {
      checkU(2);
      checkO(1);
      const ASlot B = popSlot();
      const ASlot A = popSlot();
      E.push_back(B);
      E.push_back(A);
      E.push_back(B);
      break;
    }
    case Opcode::TwoDup: {
      checkU(2);
      checkO(2);
      const ASlot B = popSlot();
      const ASlot A = popSlot();
      E.push_back(A);
      E.push_back(B);
      E.push_back(A);
      E.push_back(B);
      break;
    }
    case Opcode::TwoDrop: {
      checkU(2);
      (void)popSlot();
      (void)popSlot();
      break;
    }
    default:
      sc::unreachable("not a stack manipulation");
    }
    ++RP.ManipsDissolved;
  }

  /// Fall-through into leader \p L: spill the symbolic state so the next
  /// block starts canonical. The spill instruction belongs to the edge
  /// (it precedes the block entry index recorded by startBlock).
  void syncInto(uint32_t L) {
    CurPc = L;
    beginOp();
    const uint32_t Plan = planNow();
    if (Plan == NoFlush)
      return;
    emitI(RvSync, 0, 0, 0, NoFlush, Plan);
    ++RP.SyncsEmitted;
  }

  /// Translates one original instruction. Returns false when the
  /// instruction ends the basic block.
  bool translateInst(const Inst &I) {
    beginOp();
    switch (I.Op) {
    case Opcode::Halt:
      emitI(RvHalt, 0, 0, 0, NoFlush, planNow());
      return false;
    case Opcode::Nop:
      return true;
    case Opcode::Lit:
      doLit(I.Operand);
      return true;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Lshift:
    case Opcode::Rshift:
    case Opcode::Min:
    case Opcode::Max:
    case Opcode::Eq:
    case Opcode::Ne:
    case Opcode::Lt:
    case Opcode::Gt:
    case Opcode::Le:
    case Opcode::Ge:
    case Opcode::ULt:
      doBinop(I.Op);
      return true;
    case Opcode::Negate:
    case Opcode::Invert:
    case Opcode::Abs:
    case Opcode::OnePlus:
    case Opcode::OneMinus:
    case Opcode::TwoStar:
    case Opcode::TwoSlash:
    case Opcode::Cells:
    case Opcode::ZeroEq:
    case Opcode::ZeroNe:
    case Opcode::ZeroLt:
    case Opcode::ZeroGt:
      doUnop(I.Op);
      return true;
    case Opcode::Dup:
    case Opcode::Drop:
    case Opcode::Swap:
    case Opcode::Over:
    case Opcode::Rot:
    case Opcode::Nip:
    case Opcode::Tuck:
    case Opcode::TwoDup:
    case Opcode::TwoDrop:
      doManip(I.Op);
      return true;
    case Opcode::Fetch:
      doFetch(RvFetch);
      return true;
    case Opcode::CFetch:
      doFetch(RvCFetch);
      return true;
    case Opcode::Store:
      doStore(RvStore);
      return true;
    case Opcode::CStore:
      doStore(RvCStore);
      return true;
    case Opcode::PlusStore:
      doStore(RvPlusStore);
      return true;
    case Opcode::ToR: {
      checkU(1);
      const uint32_t Pre = prePlan(); // RROOM trap fires before the pop
      const ASlot A = popSlot();
      emitI(RvToR, 0, descOf(A), 0, Pre, NoFlush);
      return true;
    }
    case Opcode::RFrom: {
      checkO(1);
      const uint32_t Pre = prePlan();
      const uint32_t R = allocReg();
      emitI(RvRFrom, static_cast<Cell>(R), 0, 0, Pre, NoFlush);
      pushReg(R);
      return true;
    }
    case Opcode::RFetch: {
      checkO(1);
      const uint32_t Pre = prePlan();
      const uint32_t R = allocReg();
      emitI(RvRFetch, static_cast<Cell>(R), 0, 0, Pre, NoFlush);
      pushReg(R);
      return true;
    }
    case Opcode::DoSetup: {
      checkU(2);
      const uint32_t Pre = prePlan(); // RROOM fires before the pops
      const ASlot Index = popSlot();
      const ASlot Limit = popSlot();
      emitI(RvDoSetup, 0, descOf(Limit), descOf(Index), Pre, NoFlush);
      return true;
    }
    case Opcode::LoopI: {
      checkO(1);
      const uint32_t Pre = prePlan();
      const uint32_t R = allocReg();
      emitI(RvLoopI, static_cast<Cell>(R), 0, 0, Pre, NoFlush);
      pushReg(R);
      return true;
    }
    case Opcode::LoopJ: {
      checkO(1);
      const uint32_t Pre = prePlan();
      const uint32_t R = allocReg();
      emitI(RvLoopJ, static_cast<Cell>(R), 0, 0, Pre, NoFlush);
      pushReg(R);
      return true;
    }
    case Opcode::Unloop:
      emitI(RvUnloop, 0, 0, 0, prePlan(), NoFlush);
      return true;
    case Opcode::Branch: {
      const uint32_t Plan = planNow();
      Fixups.emplace_back(emitI(RvBranch, 0, 0, 0, NoFlush, Plan),
                          static_cast<uint32_t>(I.Operand));
      return false;
    }
    case Opcode::QBranch: {
      checkU(1);
      const ASlot Flag = popSlot();
      const uint32_t Plan = planNow(); // flag consumed on both edges
      Fixups.emplace_back(emitI(RvQBranch, 0, descOf(Flag), 0, NoFlush, Plan),
                          static_cast<uint32_t>(I.Operand));
      return false;
    }
    case Opcode::LoopBr: {
      const uint32_t Plan = planNow();
      Fixups.emplace_back(emitI(RvLoopBr, 0, 0, 0, Plan, Plan),
                          static_cast<uint32_t>(I.Operand));
      return false;
    }
    case Opcode::PlusLoopBr: {
      checkU(1);
      const uint32_t Pre = prePlan(); // RNEED fires with the step on stack
      const ASlot N = popSlot();
      const uint32_t Plan = planNow();
      Fixups.emplace_back(
          emitI(RvPlusLoopBr, 0, descOf(N), 0, Pre, Plan),
          static_cast<uint32_t>(I.Operand));
      return false;
    }
    case Opcode::Call: {
      // W2 carries the canonical return address (an original instruction
      // index), exactly what the stream engines push.
      const uint32_t Plan = planNow();
      Fixups.emplace_back(emitI(RvCall, 0, static_cast<Cell>(CurPc + 1), 0,
                                Plan, Plan),
                          static_cast<uint32_t>(I.Operand));
      return false;
    }
    case Opcode::Exit: {
      const uint32_t Plan = planNow();
      emitI(RvExit, 0, 0, 0, Plan, Plan);
      return false;
    }
    case Opcode::Emit: {
      checkU(1);
      const ASlot A = popSlot();
      emitI(RvEmit, 0, descOf(A), 0, NoFlush, NoFlush);
      return true;
    }
    case Opcode::Dot: {
      checkU(1);
      const ASlot A = popSlot();
      emitI(RvDot, 0, descOf(A), 0, NoFlush, NoFlush);
      return true;
    }
    case Opcode::Cr:
      emitI(RvCr, 0, 0, 0, NoFlush, NoFlush);
      return true;
    case Opcode::Space:
      emitI(RvSpace, 0, 0, 0, NoFlush, NoFlush);
      return true;
    case Opcode::TypeOp: {
      checkU(2);
      const ASlot Len = popSlot();
      const ASlot Addr = popSlot();
      const uint32_t Post = planNow();
      emitI(RvType, 0, descOf(Addr), descOf(Len), NoFlush, Post);
      return true;
    }
    // Superinstructions decompose into lit + consumer, sharing the fused
    // pc; InstBodies.inc writes their bodies the same way, so trap
    // positions and trap-time stack contents match exactly.
    case Opcode::LitAdd:
      doLit(I.Operand);
      beginOp();
      doBinop(Opcode::Add);
      return true;
    case Opcode::LitSub:
      doLit(I.Operand);
      beginOp();
      doBinop(Opcode::Sub);
      return true;
    case Opcode::LitLt:
      doLit(I.Operand);
      beginOp();
      doBinop(Opcode::Lt);
      return true;
    case Opcode::LitEq:
      doLit(I.Operand);
      beginOp();
      doBinop(Opcode::Eq);
      return true;
    case Opcode::LitFetch:
      // The unfused body validates without pushing the address; fetching
      // through a constant slot traps at the same depth (push then pop is
      // net zero and purely symbolic here).
      doLit(I.Operand);
      --RP.LitsAbsorbed; // not a guest-visible literal; keep stats honest
      beginOp();
      doFetch(RvFetch);
      return true;
    case Opcode::LitStore:
      doLit(I.Operand);
      --RP.LitsAbsorbed;
      beginOp();
      doStore(RvStore);
      return true;
    }
    sc::unreachable("unhandled opcode");
  }
};

} // namespace

RegProgram sc::regvm::compileRegProgram(const Code &Prog) {
  return Translator(Prog).run();
}
