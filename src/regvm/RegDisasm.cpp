//===-- regvm/RegDisasm.cpp - Register-IR disassembler --------------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "regvm/RegVm.h"

#include "support/Assert.h"
#include "vm/Opcode.h"

#include <sstream>

using namespace sc;
using namespace sc::regvm;
using namespace sc::vm;

namespace {

const char *regOpName(uint16_t H) {
  switch (H) {
  case RvCheckU:
    return "check.u";
  case RvCheckO:
    return "check.o";
  case RvAdd:
    return "add";
  case RvSub:
    return "sub";
  case RvMul:
    return "mul";
  case RvDiv:
    return "div";
  case RvMod:
    return "mod";
  case RvAnd:
    return "and";
  case RvOr:
    return "or";
  case RvXor:
    return "xor";
  case RvLshift:
    return "lshift";
  case RvRshift:
    return "rshift";
  case RvMin:
    return "min";
  case RvMax:
    return "max";
  case RvEq:
    return "eq";
  case RvNe:
    return "ne";
  case RvLt:
    return "lt";
  case RvGt:
    return "gt";
  case RvLe:
    return "le";
  case RvGe:
    return "ge";
  case RvULt:
    return "ult";
  case RvNegate:
    return "negate";
  case RvInvert:
    return "invert";
  case RvAbs:
    return "abs";
  case RvOnePlus:
    return "add1";
  case RvOneMinus:
    return "sub1";
  case RvTwoStar:
    return "shl1";
  case RvTwoSlash:
    return "shr1";
  case RvCells:
    return "cells";
  case RvZeroEq:
    return "eq0";
  case RvZeroNe:
    return "ne0";
  case RvZeroLt:
    return "lt0";
  case RvZeroGt:
    return "gt0";
  case RvFetch:
    return "load";
  case RvCFetch:
    return "load.b";
  case RvStore:
    return "store";
  case RvCStore:
    return "store.b";
  case RvPlusStore:
    return "store.add";
  case RvEmit:
    return "emit";
  case RvDot:
    return "dot";
  case RvCr:
    return "cr";
  case RvSpace:
    return "space";
  case RvType:
    return "type";
  case RvToR:
    return "rpush";
  case RvRFrom:
    return "rpop";
  case RvRFetch:
    return "rpeek";
  case RvDoSetup:
    return "do.setup";
  case RvLoopI:
    return "loop.i";
  case RvLoopJ:
    return "loop.j";
  case RvUnloop:
    return "unloop";
  case RvBranch:
    return "jump";
  case RvQBranch:
    return "jump.z";
  case RvLoopBr:
    return "loop.br";
  case RvPlusLoopBr:
    return "loop.br+";
  case RvCall:
    return "call";
  case RvExit:
    return "exit";
  case RvHalt:
    return "halt";
  case RvSync:
    return "sync";
  default:
    return "?";
  }
}

/// Renders an operand-slot descriptor: rN (register), cK=V (constant),
/// m[J] (architectural cell J below the entry TOS).
std::string slotStr(const RegProgram &RP, Cell D) {
  const uint64_t Idx = static_cast<UCell>(D) >> 2;
  std::ostringstream S;
  if (D & 2) {
    S << "m[" << Idx << "]";
  } else if (D & 1) {
    S << "c" << Idx;
    if (Idx < RP.ConstPool.size())
      S << "=" << RP.ConstPool[Idx];
  } else {
    S << "r" << Idx;
  }
  return S.str();
}

/// Renders a flush plan: {pop d; slot slot ...}.
std::string planStr(const RegProgram &RP, uint32_t Id) {
  if (Id == NoFlush)
    return "-";
  SC_ASSERT(Id + 2 <= RP.FlushPool.size(), "bad flush plan id");
  const Cell *P = RP.FlushPool.data() + Id;
  const unsigned FD = static_cast<unsigned>(P[0]);
  const unsigned FN = static_cast<unsigned>(P[1]);
  std::ostringstream S;
  S << "{pop " << FD << ";";
  for (unsigned J = 0; J < FN; ++J)
    S << " " << slotStr(RP, P[2 + J]);
  S << "}";
  return S.str();
}

/// One register instruction, without the trailing newline.
std::string instStr(const RegProgram &RP, uint32_t I) {
  const RegInst &In = RP.Insts[I];
  std::ostringstream S;
  S << regOpName(In.Handler);
  switch (In.Handler) {
  case RvCheckU:
  case RvCheckO:
    S << " " << In.W1;
    break;
  case RvNegate:
  case RvInvert:
  case RvAbs:
  case RvOnePlus:
  case RvOneMinus:
  case RvTwoStar:
  case RvTwoSlash:
  case RvCells:
  case RvZeroEq:
  case RvZeroNe:
  case RvZeroLt:
  case RvZeroGt:
    S << " r" << In.W1 << ", " << slotStr(RP, In.W2);
    break;
  case RvFetch:
  case RvCFetch:
    S << " r" << In.W1 << ", [" << slotStr(RP, In.W2) << "]";
    break;
  case RvStore:
  case RvCStore:
  case RvPlusStore:
    S << " [" << slotStr(RP, In.W2) << "], " << slotStr(RP, In.W3);
    break;
  case RvEmit:
  case RvDot:
    S << " " << slotStr(RP, In.W2);
    break;
  case RvCr:
  case RvSpace:
  case RvUnloop:
  case RvHalt:
  case RvSync:
    break;
  case RvType:
    S << " " << slotStr(RP, In.W2) << ", " << slotStr(RP, In.W3);
    break;
  case RvToR:
    S << " " << slotStr(RP, In.W2);
    break;
  case RvRFrom:
  case RvRFetch:
  case RvLoopI:
  case RvLoopJ:
    S << " r" << In.W1;
    break;
  case RvDoSetup:
    S << " " << slotStr(RP, In.W2) << ", " << slotStr(RP, In.W3);
    break;
  case RvBranch:
  case RvLoopBr:
    S << " @" << In.W1;
    break;
  case RvQBranch:
  case RvPlusLoopBr:
    S << " @" << In.W1 << ", " << slotStr(RP, In.W2);
    break;
  case RvCall:
    S << " @" << In.W1 << ", ret=" << In.W2;
    break;
  case RvExit:
    break;
  default: // three-operand ALU
    S << " r" << In.W1 << ", " << slotStr(RP, In.W2) << ", "
      << slotStr(RP, In.W3);
    break;
  }
  const uint32_t Pre = RP.PreFlush[I];
  const uint32_t Post = RP.PostFlush[I];
  if (Pre != NoFlush)
    S << "  pre=" << planStr(RP, Pre);
  if (Post != NoFlush)
    S << "  post=" << planStr(RP, Post);
  return S.str();
}

} // namespace

std::string sc::regvm::disasmReg(const RegProgram &RP) {
  std::ostringstream S;
  S << "; regvm: " << RP.Insts.size() << " insts from " << RP.OrigInsts
    << " (regs " << RP.MaxRegs << ", manips dissolved " << RP.ManipsDissolved
    << ", lits absorbed " << RP.LitsAbsorbed << ", consts folded "
    << RP.ConstsFolded << ", checks " << RP.ChecksEmitted << "+"
    << RP.ChecksEliminated << " elided, syncs " << RP.SyncsEmitted << ")\n";
  for (uint32_t I = 0; I < RP.Insts.size(); ++I) {
    S << I << ":\t";
    if (RP.EntryOrig[I] != InvalidReg)
      S << "[entry pc " << RP.EntryOrig[I] << "] ";
    S << instStr(RP, I) << "\n";
  }
  return S.str();
}

std::string sc::regvm::disasmSideBySide(const Code &Prog,
                                        const RegProgram &RP) {
  SC_ASSERT(RP.OrigInsts == Prog.size(), "program/translation mismatch");
  std::ostringstream S;
  S << "; stack code | register translation\n";
  for (uint32_t Pc = 0; Pc < Prog.size(); ++Pc) {
    const Inst &In = Prog.Insts[Pc];
    std::ostringstream Left;
    Left << Pc << ": " << mnemonic(In.Op);
    if (opInfo(In.Op).HasOperand)
      Left << " " << In.Operand;
    std::string L = Left.str();
    if (L.size() < 28)
      L.resize(28, ' ');
    // Register instructions derived from this pc (contiguous by
    // construction: translation walks the program in order).
    bool Any = false;
    for (uint32_t I = 0; I < RP.Insts.size(); ++I) {
      if (RP.RegToOrig[I] != Pc)
        continue;
      S << (Any ? std::string(28, ' ') : L) << " | ";
      if (RP.EntryOrig[I] != InvalidReg)
        S << "[entry] ";
      S << I << ": " << instStr(RP, I) << "\n";
      Any = true;
    }
    if (!Any)
      S << L << " | (dissolved)\n";
  }
  return S.str();
}
