//===-- regvm/RegVmEngine.cpp - Threaded register-IR interpreter ----------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
//
// Direct-threaded execution of the register IR (see RegTranslate.cpp).
// Virtual registers live in a pooled scratch array; the architectural
// data stack pointer is frozen between control transfers, so entry cells
// are addressed Dsp-relative and every trap/exit first executes the
// instruction's flush plan to restore the canonical stack the reference
// engine would hold at that point. Structure mirrors staticCore: one
// noinline function exporting its handler labels once, a prepared stream
// of pre-resolved label addresses with pre-scaled branch targets, and
// StepLimit stops taken only at canonical block entries.
//
//===----------------------------------------------------------------------===//

#include "regvm/RegVm.h"

#include "metrics/Counters.h"
#include "support/Assert.h"
#include "vm/ArithOps.h"
#include "vm/Translate.h"

using namespace sc;
using namespace sc::regvm;
using namespace sc::vm;

namespace {

/// Executes prepared register stream \p Stream (4 * RPP->Insts.size()
/// cells, see translateRegStream) from original entry \p OrigEntry. When
/// \p HandlersOut is non-null, fills it with the handler label table and
/// returns without running; \p RPP and \p CtxPtr may then be null.
/// noinline keeps the compiler from cloning the function, which would
/// give the export and execution paths distinct label addresses.
__attribute__((noinline)) RunOutcome
regCore(const RegProgram *RPP, ExecContext *CtxPtr, uint32_t OrigEntry,
        const Cell *Stream, Cell *HandlersOut) {
  // Handler label table, indexed by RegOp.
  static const void *const Labels[NumRegOps] = {
      &&H_CheckU,  &&H_CheckO,    &&H_Add,    &&H_Sub,      &&H_Mul,
      &&H_Div,     &&H_Mod,       &&H_And,    &&H_Or,       &&H_Xor,
      &&H_Lshift,  &&H_Rshift,    &&H_Min,    &&H_Max,      &&H_Eq,
      &&H_Ne,      &&H_Lt,        &&H_Gt,     &&H_Le,       &&H_Ge,
      &&H_ULt,     &&H_Negate,    &&H_Invert, &&H_Abs,      &&H_OnePlus,
      &&H_OneMinus, &&H_TwoStar,  &&H_TwoSlash, &&H_Cells,  &&H_ZeroEq,
      &&H_ZeroNe,  &&H_ZeroLt,    &&H_ZeroGt, &&H_Fetch,    &&H_CFetch,
      &&H_Store,   &&H_CStore,    &&H_PlusStore, &&H_Emit,  &&H_Dot,
      &&H_Cr,      &&H_Space,     &&H_Type,   &&H_ToR,      &&H_RFrom,
      &&H_RFetch,  &&H_DoSetup,   &&H_LoopI,  &&H_LoopJ,    &&H_Unloop,
      &&H_Branch,  &&H_QBranch,   &&H_LoopBr, &&H_PlusLoopBr, &&H_Call,
      &&H_Exit,    &&H_Halt,      &&H_Sync,
  };

  if (HandlersOut) {
    for (unsigned I = 0; I < NumRegOps; ++I)
      HandlersOut[I] = reinterpret_cast<Cell>(Labels[I]);
    return {RunStatus::Halted, 0};
  }

  const RegProgram &RP = *RPP;
  ExecContext &Ctx = *CtxPtr;
  SC_ASSERT(Ctx.Prog && Ctx.Machine, "unbound ExecContext");
  SC_ASSERT(OrigEntry < RP.OrigToReg.size(), "entry out of range");
  const UCell RegSize = RP.Insts.size();
  const UCell OrigSize = Ctx.Prog->Insts.size();
  // Entry must be a block leader; resumed runs re-enter at StepLimit
  // stops, which the engine only takes at canonical entries (see RDNEXT).
  const uint32_t Entry = RP.OrigToReg[OrigEntry];
  SC_ASSERT(Entry < RegSize, "entry is not a block leader");

  const uint32_t *R2O = RP.RegToOrig.data();
  const uint32_t *O2R = RP.OrigToReg.data();
  const uint32_t *EO = RP.EntryOrig.data();
  const uint32_t *PreF = RP.PreFlush.data();
  const uint32_t *PostF = RP.PostFlush.data();
  const Cell *CPool = RP.ConstPool.data();
  const Cell *FPool = RP.FlushPool.data();

  // Register file + flush scratch, pooled in the context so repeat runs
  // allocate nothing.
  const size_t NeedScratch =
      static_cast<size_t>(RP.MaxRegs) + RP.MaxFlushSlots;
  if (Ctx.RegScratch.size() < NeedScratch)
    Ctx.RegScratch.resize(NeedScratch);
  Cell *Regs = Ctx.RegScratch.data();
  Cell *FScratch = Regs + RP.MaxRegs;

  Vm &TheVm = *Ctx.Machine;
  const Cell *Base = Stream;
  const Cell *Ip = Base + 4 * Entry;
  const Cell *W = Ip;
  Cell *Stack = Ctx.DS.data();
  Cell *RStack = Ctx.RS.data();
  const unsigned DsCap = Ctx.DsCapacity;
  const unsigned RsCap = Ctx.RsCapacity;
  unsigned Dsp = Ctx.DsDepth;
  unsigned Rsp = Ctx.RsDepth;
  uint64_t StepsLeft = Ctx.MaxSteps;
  uint64_t Steps = 0;
  RunStatus St = RunStatus::Halted;
  Cell FaultAddr = 0;
  bool HasFaultAddr = false;
  // Pending spill at trap time: flush-plan id (NoFlush when the stack is
  // already canonical), plus the original PC to report.
  uint32_t TrapPc = OrigEntry;
  uint32_t TrapFlush = NoFlush;

  // Seed the sentinel return address unless this call resumes an
  // interrupted run (Ctx.Resume), which already carries it.
  if (!Ctx.Resume) {
    if (Rsp >= RsCap) {
      SC_IF_STATS(if (Ctx.Stats)
                    metrics::noteTrap(*Ctx.Stats, RunStatus::RStackOverflow));
      return makeFault(RunStatus::RStackOverflow, 0, OrigEntry,
                       Ctx.Prog->Insts[OrigEntry].Op, Dsp, Rsp);
    }
    RStack[Rsp++] = 0;
  }

// Operand-slot decode (see SlotTag): tag 2 = architectural cell below
// the frozen entry TOS, tag 1 = constant pool, tag 0 = virtual register.
#define RVAL(D)                                                                \
  ((D) & 2 ? Stack[Dsp - 1 - (static_cast<UCell>(D) >> 2)]                     \
           : ((D) & 1 ? CPool[static_cast<UCell>(D) >> 2]                      \
                      : Regs[static_cast<UCell>(D) >> 2]))

// Executes flush plan \p Id: evaluates every slot first (a plan may read
// the entry cells it is about to overwrite), then rewrites the stack.
#define RFLUSH(Id)                                                             \
  {                                                                            \
    const Cell *P = FPool + (Id);                                              \
    const unsigned FD = static_cast<unsigned>(P[0]);                           \
    const unsigned FN = static_cast<unsigned>(P[1]);                           \
    for (unsigned J = 0; J < FN; ++J)                                          \
      FScratch[J] = RVAL(P[2 + J]);                                            \
    Dsp -= FD;                                                                 \
    for (unsigned J = 0; J < FN; ++J)                                          \
      Stack[Dsp + J] = FScratch[J];                                            \
    Dsp += FN;                                                                 \
    SC_IF_STATS(if (Ctx.Stats) Ctx.Stats->ReconcileStores += FN);              \
  }

// StepLimit stops are deferred to canonical block entries — the only
// positions a later run (on this or any other engine) can re-enter.
// When the budget runs out elsewhere, execution continues with StepsLeft
// pinned at zero until the next entry; Steps keeps counting, so the
// overshoot is visible in the outcome and bounded by the longest block.
#define RDNEXT                                                                 \
  {                                                                            \
    if (StepsLeft == 0) {                                                      \
      const UCell NextIdx = static_cast<UCell>((Ip - Base) / 4);               \
      if (NextIdx < RegSize && EO[NextIdx] != InvalidReg) {                    \
        TrapPc = EO[NextIdx];                                                  \
        TrapFlush = NoFlush;                                                   \
        St = RunStatus::StepLimit;                                             \
        goto Done;                                                             \
      }                                                                        \
    } else {                                                                   \
      --StepsLeft;                                                             \
    }                                                                          \
    ++Steps;                                                                   \
    W = Ip;                                                                    \
    Ip += 4;                                                                   \
    SC_IF_STATS(if (Ctx.Stats)                                                 \
                  metrics::noteDispatch(                                       \
                      *Ctx.Stats,                                              \
                      Ctx.Prog->Insts[R2O[(W - Base) / 4]].Op));               \
    goto *reinterpret_cast<void *>(W[0]);                                      \
  }
#define RTRAP_AT(Status, Flush)                                                \
  {                                                                            \
    TrapPc = R2O[(W - Base) / 4];                                              \
    TrapFlush = (Flush);                                                       \
    St = RunStatus::Status;                                                    \
    goto Done;                                                                 \
  }
// Pre-input trap (limit checks): spill the state before the op's pops.
#define RTRAP_PRE(Status) RTRAP_AT(Status, PreF[(W - Base) / 4])
// Post-input trap (div-by-zero, bad memory): inputs already consumed.
#define RTRAP_POST(Status) RTRAP_AT(Status, PostF[(W - Base) / 4])
#define RTRAPMEM_POST(A)                                                       \
  {                                                                            \
    FaultAddr = (A);                                                           \
    HasFaultAddr = true;                                                       \
    RTRAP_POST(BadMemAccess);                                                  \
  }
// Happy-path spill on a control transfer (or fall-through sync).
#define RSPILL_POST                                                            \
  {                                                                            \
    const uint32_t PlanId = PostF[(W - Base) / 4];                             \
    if (PlanId != NoFlush)                                                     \
      RFLUSH(PlanId);                                                          \
  }
// Branch operands in the prepared stream are pre-scaled threaded
// offsets; Exit's guest-supplied return address maps through OrigToReg
// and rescales through RJUMPIDX.
#define RJUMP(T)                                                               \
  {                                                                            \
    Ip = Base + static_cast<UCell>(T);                                         \
    RDNEXT;                                                                    \
  }
#define RJUMPIDX(T)                                                            \
  {                                                                            \
    Ip = Base + 4 * static_cast<UCell>(T);                                     \
    RDNEXT;                                                                    \
  }

  RDNEXT;

  // --- Deferred stack-limit checks (entry depth is frozen mid-block) -------

H_CheckU:
  if (Dsp < static_cast<unsigned>(W[1]))
    RTRAP_PRE(StackUnderflow);
  RDNEXT;
H_CheckO:
  if (Dsp + static_cast<unsigned>(W[1]) > DsCap)
    RTRAP_PRE(StackOverflow);
  RDNEXT;

  // --- Three-operand ALU ----------------------------------------------------

#define RV_BIN(Name, EXPR)                                                     \
  H_##Name: {                                                                  \
    const Cell A = RVAL(W[2]);                                                 \
    const Cell B = RVAL(W[3]);                                                 \
    (void)A;                                                                   \
    (void)B;                                                                   \
    Regs[static_cast<UCell>(W[1])] = (EXPR);                                   \
    RDNEXT;                                                                    \
  }

  RV_BIN(Add, arithAdd(A, B))
  RV_BIN(Sub, arithSub(A, B))
  RV_BIN(Mul, arithMul(A, B))
  RV_BIN(And, A &B)
  RV_BIN(Or, A | B)
  RV_BIN(Xor, A ^ B)
  RV_BIN(Lshift, arithLshift(A, B))
  RV_BIN(Rshift, arithRshift(A, B))
  RV_BIN(Min, A < B ? A : B)
  RV_BIN(Max, A > B ? A : B)
  RV_BIN(Eq, boolCell(A == B))
  RV_BIN(Ne, boolCell(A != B))
  RV_BIN(Lt, boolCell(A < B))
  RV_BIN(Gt, boolCell(A > B))
  RV_BIN(Le, boolCell(A <= B))
  RV_BIN(Ge, boolCell(A >= B))
  RV_BIN(ULt, arithULt(A, B))
#undef RV_BIN

  // Division and modulo trap after consuming their operands, exactly like
  // the reference engine; the post-input plan restores that stack.
#define RV_DIVMOD(Name, EXPR)                                                  \
  H_##Name: {                                                                  \
    const Cell A = RVAL(W[2]);                                                 \
    const Cell B = RVAL(W[3]);                                                 \
    if (B == 0)                                                                \
      RTRAP_POST(DivByZero);                                                   \
    Regs[static_cast<UCell>(W[1])] = (EXPR);                                   \
    RDNEXT;                                                                    \
  }

  RV_DIVMOD(Div, arithDiv(A, B))
  RV_DIVMOD(Mod, arithMod(A, B))
#undef RV_DIVMOD

  // --- Two-operand ALU ------------------------------------------------------

#define RV_UN(Name, EXPR)                                                      \
  H_##Name: {                                                                  \
    const Cell A = RVAL(W[2]);                                                 \
    Regs[static_cast<UCell>(W[1])] = (EXPR);                                   \
    RDNEXT;                                                                    \
  }

  RV_UN(Negate, arithNegate(A))
  RV_UN(Invert, ~A)
  RV_UN(Abs, arithAbs(A))
  RV_UN(OnePlus, arithOnePlus(A))
  RV_UN(OneMinus, arithOneMinus(A))
  RV_UN(TwoStar, arithTwoStar(A))
  RV_UN(TwoSlash, A >> 1)
  RV_UN(Cells, arithCells(A))
  RV_UN(ZeroEq, boolCell(A == 0))
  RV_UN(ZeroNe, boolCell(A != 0))
  RV_UN(ZeroLt, boolCell(A < 0))
  RV_UN(ZeroGt, boolCell(A > 0))
#undef RV_UN

  // --- Data space -----------------------------------------------------------

H_Fetch: {
  const Cell Addr = RVAL(W[2]);
  if (!TheVm.validRange(Addr, CellBytes))
    RTRAPMEM_POST(Addr);
  Regs[static_cast<UCell>(W[1])] = TheVm.loadCell(Addr);
  RDNEXT;
}
H_CFetch: {
  const Cell Addr = RVAL(W[2]);
  if (!TheVm.validRange(Addr, 1))
    RTRAPMEM_POST(Addr);
  Regs[static_cast<UCell>(W[1])] = TheVm.loadByte(Addr);
  RDNEXT;
}
H_Store: {
  const Cell Addr = RVAL(W[2]);
  const Cell V = RVAL(W[3]);
  if (!TheVm.validRange(Addr, CellBytes))
    RTRAPMEM_POST(Addr);
  TheVm.storeCell(Addr, V);
  RDNEXT;
}
H_CStore: {
  const Cell Addr = RVAL(W[2]);
  const Cell V = RVAL(W[3]);
  if (!TheVm.validRange(Addr, 1))
    RTRAPMEM_POST(Addr);
  TheVm.storeByte(Addr, V);
  RDNEXT;
}
H_PlusStore: {
  const Cell Addr = RVAL(W[2]);
  const Cell V = RVAL(W[3]);
  if (!TheVm.validRange(Addr, CellBytes))
    RTRAPMEM_POST(Addr);
  TheVm.storeCell(Addr,
                  static_cast<Cell>(static_cast<UCell>(TheVm.loadCell(Addr)) +
                                    static_cast<UCell>(V)));
  RDNEXT;
}

  // --- Output ---------------------------------------------------------------

H_Emit:
  TheVm.emitChar(RVAL(W[2]));
  RDNEXT;
H_Dot:
  TheVm.printNumber(RVAL(W[2]));
  RDNEXT;
H_Cr:
  TheVm.emitChar('\n');
  RDNEXT;
H_Space:
  TheVm.emitChar(' ');
  RDNEXT;
H_Type: {
  const Cell Addr = RVAL(W[2]);
  const Cell Len = RVAL(W[3]);
  if (Len < 0 || !TheVm.validRange(Addr, Len))
    RTRAPMEM_POST(Addr);
  TheVm.typeRange(Addr, Len);
  RDNEXT;
}

  // --- Return stack (always architectural) ----------------------------------

H_ToR:
  if (Rsp >= RsCap)
    RTRAP_PRE(RStackOverflow);
  RStack[Rsp++] = RVAL(W[2]);
  RDNEXT;
H_RFrom:
  if (Rsp < 1)
    RTRAP_PRE(RStackUnderflow);
  Regs[static_cast<UCell>(W[1])] = RStack[--Rsp];
  RDNEXT;
H_RFetch:
  if (Rsp < 1)
    RTRAP_PRE(RStackUnderflow);
  Regs[static_cast<UCell>(W[1])] = RStack[Rsp - 1];
  RDNEXT;
H_DoSetup: {
  if (Rsp + 2 > RsCap)
    RTRAP_PRE(RStackOverflow);
  const Cell Limit = RVAL(W[2]);
  const Cell Index = RVAL(W[3]);
  RStack[Rsp++] = Limit;
  RStack[Rsp++] = Index;
  RDNEXT;
}
H_LoopI:
  if (Rsp < 1)
    RTRAP_PRE(RStackUnderflow);
  Regs[static_cast<UCell>(W[1])] = RStack[Rsp - 1];
  RDNEXT;
H_LoopJ:
  if (Rsp < 3)
    RTRAP_PRE(RStackUnderflow);
  Regs[static_cast<UCell>(W[1])] = RStack[Rsp - 3];
  RDNEXT;
H_Unloop:
  if (Rsp < 2)
    RTRAP_PRE(RStackUnderflow);
  Rsp -= 2;
  RDNEXT;

  // --- Control transfers: operand slots are evaluated before the spill
  // (the spill may rewrite the entry cells a slot points at).

H_Branch:
  RSPILL_POST;
  RJUMP(W[1]);
H_QBranch: {
  const Cell Flag = RVAL(W[2]);
  RSPILL_POST;
  if (Flag == 0)
    RJUMP(W[1]);
  RDNEXT;
}
H_LoopBr: {
  if (Rsp < 2)
    RTRAP_PRE(RStackUnderflow);
  RSPILL_POST;
  const Cell Index = RStack[Rsp - 1] + 1;
  if (Index != RStack[Rsp - 2]) {
    RStack[Rsp - 1] = Index;
    RJUMP(W[1]);
  }
  Rsp -= 2;
  RDNEXT;
}
H_PlusLoopBr: {
  if (Rsp < 2)
    RTRAP_PRE(RStackUnderflow);
  const Cell N = RVAL(W[2]);
  RSPILL_POST;
  const Cell Index = RStack[Rsp - 1];
  const Cell Limit = RStack[Rsp - 2];
  const __int128 D = static_cast<__int128>(Index) - Limit;
  const __int128 D2 = D + N;
  const bool Crossed = (D < 0 && D2 >= 0) || (D >= 0 && D2 < 0);
  if (!Crossed) {
    RStack[Rsp - 1] =
        static_cast<Cell>(static_cast<UCell>(Index) + static_cast<UCell>(N));
    RJUMP(W[1]);
  }
  Rsp -= 2;
  RDNEXT;
}

  // Calls push canonical return addresses — original instruction indices,
  // exactly what the stream engines push — so the return stack is fully
  // comparable across engines and survives a mid-run engine switch. The
  // instruction after a call is always a block leader, so the orig index
  // maps back through OrigToReg on exit; a guest-forged return address
  // (>r then exit) naming a non-leader has no entry and traps
  // BadMemAccess (see docs/TRAPS.md).

H_Call:
  if (Rsp >= RsCap)
    RTRAP_PRE(RStackOverflow);
  RSPILL_POST;
  RStack[Rsp++] = W[2];
  RJUMP(W[1]);
H_Exit: {
  if (Rsp < 1)
    RTRAP_PRE(RStackUnderflow);
  RSPILL_POST;
  const Cell Ret = RStack[--Rsp];
  if (static_cast<UCell>(Ret) >= OrigSize || O2R[Ret] == InvalidReg)
    RTRAP_AT(BadMemAccess, NoFlush); // already spilled; depth is canonical
  RJUMPIDX(O2R[Ret]);
}
H_Halt:
  RSPILL_POST;
  TrapFlush = NoFlush;
  St = RunStatus::Halted;
  goto Done;
H_Sync:
  RSPILL_POST;
  RDNEXT;

Done:
  if (TrapFlush != NoFlush)
    RFLUSH(TrapFlush);
#undef RVAL
#undef RFLUSH
#undef RDNEXT
#undef RTRAP_AT
#undef RTRAP_PRE
#undef RTRAP_POST
#undef RTRAPMEM_POST
#undef RSPILL_POST
#undef RJUMP
#undef RJUMPIDX
  SC_IF_STATS(if (Ctx.Stats) metrics::noteTrap(*Ctx.Stats, St));
  Ctx.DsDepth = Dsp;
  Ctx.RsDepth = Rsp;
  Ctx.noteHighWater();
  if (St == RunStatus::Halted)
    return {St, Steps};
  // TrapPc is already an original program counter: the trapping
  // instruction's RegToOrig entry, or the resume leader on StepLimit.
  // Depths are post-spill, matching the canonical contract.
  return makeFault(St, Steps, TrapPc,
                   TrapPc < OrigSize ? Ctx.Prog->Insts[TrapPc].Op
                                     : Opcode::Halt,
                   Dsp, Rsp, FaultAddr, HasFaultAddr);
}

/// One-time cached copy of the handler label table.
const Cell *regHandlerTable() {
  static Cell Tab[NumRegOps];
  static const bool Ready = [] {
    regCore(nullptr, nullptr, 0, nullptr, Tab);
    return true;
  }();
  (void)Ready;
  return Tab;
}

} // namespace

void sc::regvm::regHandlerCells(Cell Out[NumRegOps]) {
  const Cell *Tab = regHandlerTable();
  for (unsigned I = 0; I < NumRegOps; ++I)
    Out[I] = Tab[I];
}

void sc::regvm::translateRegStream(const RegProgram &RP, const Cell *Handlers,
                                   Cell *Out) {
  const size_t N = RP.Insts.size();
  for (size_t I = 0; I < N; ++I) {
    const RegInst &In = RP.Insts[I];
    SC_ASSERT(In.Handler < NumRegOps, "bad handler index");
    Out[4 * I] = Handlers[In.Handler];
    Out[4 * I + 1] = regIsBranchLike(In.Handler) ? In.W1 * 4 : In.W1;
    Out[4 * I + 2] = In.W2;
    Out[4 * I + 3] = In.W3;
  }
  vm::noteStreamTranslation();
}

vm::RunOutcome sc::regvm::runRegPrepared(const RegProgram &RP,
                                         ExecContext &Ctx, uint32_t OrigEntry,
                                         const Cell *Stream) {
  return regCore(&RP, &Ctx, OrigEntry, Stream, nullptr);
}

vm::RunOutcome sc::regvm::runRegEngine(const RegProgram &RP, ExecContext &Ctx,
                                       uint32_t OrigEntry) {
  const size_t N = RP.Insts.size();
  if (Ctx.StreamScratch.size() < 4 * N)
    Ctx.StreamScratch.resize(4 * N);
  translateRegStream(RP, regHandlerTable(), Ctx.StreamScratch.data());
  return regCore(&RP, &Ctx, OrigEntry, Ctx.StreamScratch.data(), nullptr);
}
