//===-- regvm/RegVm.h - Register-IR translation and engine -----*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A prepare-time translation from stack Code to a register-based IR, and
/// a direct-threaded interpreter for it: the logical endpoint of the
/// paper's stack-caching line. Where the static cache keeps the top one
/// or two stack items in machine registers and reconciles cache states at
/// block boundaries, this pass lifts the idea to unbounded state: an
/// abstract-stack walk over each basic block maps every intermediate
/// stack slot to a virtual register, dissolves pure stack manipulations
/// (dup/swap/over/drop become slot renames or disappear), folds literals
/// into three-operand instructions, and reconciles the abstract state
/// back to the architectural data stack at every control-flow join —
/// exactly the static cache's state-0-at-joins rule, with the "cache"
/// grown to the whole block-local stack.
///
/// Contracts (see docs/TRAPS.md):
///   - Every block entry is canonical: register state exists only
///     between two control transfers, so StepLimit stops (taken only at
///     entries, like the static engines' safe points) and faults always
///     leave ExecContext with fully architectural stacks.
///   - Stack-limit checks that the dissolved ops would have performed
///     are emitted as explicit check instructions at their original
///     program positions (eliminated only when a prior check in the same
///     block dominates them), so trap order, trap PC and trap-time stack
///     contents are bit-identical to the reference engine — the regvm
///     flavor never defers an overflow.
///   - FaultInfo PCs are mapped back to original instruction indices
///     through RegToOrig (the SpecToOrig analogue); Exit return addresses
///     are validated against OrigToReg like the static engines validate
///     against OrigToSpec.
///
//===----------------------------------------------------------------------===//

#ifndef SC_REGVM_REGVM_H
#define SC_REGVM_REGVM_H

#include "vm/Code.h"
#include "vm/ExecContext.h"
#include "vm/RunResult.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sc::regvm {

/// Register-IR operations. One handler per row; the threaded stream
/// stores the handler's label address, so this enum is also the handler
/// index space (NumRegOps entries).
enum RegOp : uint16_t {
  // Deferred stack-limit checks for dissolved/folded ops: W1 = threshold,
  // trap PC and spill plan come from the instruction's side tables.
  RvCheckU, ///< trap StackUnderflow unless entry depth >= W1
  RvCheckO, ///< trap StackOverflow if entry depth + W1 > capacity
  // Three-operand ALU: W1 = destination register, W2/W3 = operand slots.
  RvAdd,
  RvSub,
  RvMul,
  RvDiv,
  RvMod,
  RvAnd,
  RvOr,
  RvXor,
  RvLshift,
  RvRshift,
  RvMin,
  RvMax,
  RvEq,
  RvNe,
  RvLt,
  RvGt,
  RvLe,
  RvGe,
  RvULt,
  // Two-operand ALU: W1 = destination register, W2 = operand slot.
  RvNegate,
  RvInvert,
  RvAbs,
  RvOnePlus,
  RvOneMinus,
  RvTwoStar,
  RvTwoSlash,
  RvCells,
  RvZeroEq,
  RvZeroNe,
  RvZeroLt,
  RvZeroGt,
  // Data space: W1 = destination (loads), W2 = address, W3 = value.
  RvFetch,
  RvCFetch,
  RvStore,
  RvCStore,
  RvPlusStore,
  // Output: W2 = value / address, W3 = length.
  RvEmit,
  RvDot,
  RvCr,
  RvSpace,
  RvType,
  // Return stack (always architectural): W1 = destination, W2/W3 = values.
  RvToR,
  RvRFrom,
  RvRFetch,
  RvDoSetup,
  RvLoopI,
  RvLoopJ,
  RvUnloop,
  // Control (each spills the abstract state before transferring): W1 =
  // target register-instruction index (pre-scaled in the stream), W2 =
  // condition / step slot, or the original return address for RvCall.
  RvBranch,
  RvQBranch,
  RvLoopBr,
  RvPlusLoopBr,
  RvCall,
  RvExit,
  RvHalt,
  RvSync, ///< spill at a fall-through join, no transfer
};

/// Number of RegOp handlers (RvSync is the last row).
inline constexpr unsigned NumRegOps = RvSync + 1;

/// Invalid index sentinel for OrigToReg/EntryOrig (mirrors
/// staticcache::InvalidSpec).
inline constexpr uint32_t InvalidReg = UINT32_MAX;

/// "No spill needed" sentinel for the per-instruction flush-plan ids:
/// either the trap site cannot be reached with live registers or the
/// abstract state is the identity (all slots already architectural).
inline constexpr uint32_t NoFlush = UINT32_MAX;

/// Operand-slot descriptor encoding, stored in RegInst::W2/W3 and in
/// flush plans. Low two bits are the kind, the rest the index:
///   tag 0: virtual register index
///   tag 1: constant-pool index (folded literal)
///   tag 2: architectural cell, index counts down from the entry TOS
enum class SlotTag : uint8_t { Reg = 0, Const = 1, Mem = 2 };

inline vm::Cell encodeSlot(SlotTag T, uint64_t Idx) {
  return static_cast<vm::Cell>((Idx << 2) | static_cast<uint64_t>(T));
}

/// True for the RegOps whose W1 is a branch target that the stream
/// translation pre-scales to a threaded offset.
inline bool regIsBranchLike(uint16_t H) {
  return H == RvBranch || H == RvQBranch || H == RvLoopBr ||
         H == RvPlusLoopBr || H == RvCall;
}

/// One register-IR instruction.
struct RegInst {
  uint16_t Handler = RvHalt; ///< RegOp
  vm::Cell W1 = 0;
  vm::Cell W2 = 0;
  vm::Cell W3 = 0;
};

/// A register-IR translation of one Code, plus the side tables the
/// engine and the fault contract need. Immutable after compile.
struct RegProgram {
  std::vector<RegInst> Insts;

  /// Per instruction: the original instruction index it derives from
  /// (the SpecToOrig analogue; checks map to the op whose check they
  /// carry, spills to the join they reconcile).
  std::vector<uint32_t> RegToOrig;
  /// Per instruction: flush plan describing the abstract state before
  /// the op consumes its inputs (return-stack and deferred-check traps
  /// fire here), or NoFlush.
  std::vector<uint32_t> PreFlush;
  /// Per instruction: flush plan after inputs are consumed and before
  /// results are produced (DivByZero/BadMemAccess fire here; control ops
  /// use it as their block-end spill), or NoFlush.
  std::vector<uint32_t> PostFlush;
  /// Per instruction: the original leader PC when this instruction is a
  /// canonical block entry (the resume PC a StepLimit stop reports),
  /// InvalidReg otherwise.
  std::vector<uint32_t> EntryOrig;

  /// Per original PC: entry instruction index when the PC is a basic-
  /// block leader (the only legal entry points), InvalidReg otherwise.
  std::vector<uint32_t> OrigToReg;

  /// Folded literals referenced by Const slots.
  std::vector<vm::Cell> ConstPool;
  /// Flush plans, deduplicated: [cells-consumed, slot-count, slots...].
  /// Executing a plan pops cells-consumed entry cells and stores the
  /// evaluated slots in their place (bottom first).
  std::vector<vm::Cell> FlushPool;

  uint32_t MaxRegs = 0;       ///< register file cells one run needs
  uint32_t MaxFlushSlots = 0; ///< scratch cells the widest plan needs
  uint32_t OrigInsts = 0;     ///< size of the translated program

  // Prepare-time statistics (the SC_STATS runtime counters cover
  // dispatches; these describe what the translation achieved).
  uint32_t ManipsDissolved = 0; ///< stack-manipulation ops with no handler
  uint32_t LitsAbsorbed = 0;    ///< literals folded into operand slots
  uint32_t ConstsFolded = 0;    ///< ALU ops evaluated at translate time
  uint32_t RegsMaterialized = 0; ///< values assigned to virtual registers
  uint32_t ChecksEmitted = 0;    ///< RvCheckU/RvCheckO instructions
  uint32_t ChecksEliminated = 0; ///< checks a dominating check covered
  uint32_t SyncsEmitted = 0;     ///< RvSync spills at fall-through joins
};

/// True when register-instruction index \p I is a canonical block entry.
inline bool isRegEntry(const RegProgram &RP, uint64_t I) {
  return I < RP.EntryOrig.size() && RP.EntryOrig[I] != InvalidReg;
}

/// Translates \p Prog to register IR. The program should satisfy
/// Code::verify (callers prepare only verified programs); translation
/// itself never executes anything.
RegProgram compileRegProgram(const vm::Code &Prog);

/// Exports the engine's handler label table (one-time; same pattern as
/// staticHandlerCells).
void regHandlerCells(vm::Cell Out[NumRegOps]);

/// Renders \p RP into a threaded stream of 4 cells per instruction:
/// [handler, W1, W2, W3], with branch-like W1 pre-scaled by 4. \p Out
/// must hold 4 * RP.Insts.size() cells. Counts one stream translation.
void translateRegStream(const RegProgram &RP, const vm::Cell *Handlers,
                        vm::Cell *Out);

/// Runs prepared stream \p Stream (see translateRegStream) against
/// \p Ctx from original instruction index \p OrigEntry, which must be a
/// block leader (OrigToReg[OrigEntry] != InvalidReg).
vm::RunOutcome runRegPrepared(const RegProgram &RP, vm::ExecContext &Ctx,
                              uint32_t OrigEntry, const vm::Cell *Stream);

/// Legacy single-shot entry: translates into the context's pooled
/// scratch stream and runs.
vm::RunOutcome runRegEngine(const RegProgram &RP, vm::ExecContext &Ctx,
                            uint32_t OrigEntry);

/// Human-readable dump of the register IR (one instruction per line,
/// with entry markers, operand slots and flush plans decoded).
std::string disasmReg(const RegProgram &RP);

/// Two-column dump: every original instruction on the left, the
/// register instructions it translated to on the right. \p Prog must be
/// the program \p RP was compiled from.
std::string disasmSideBySide(const vm::Code &Prog, const RegProgram &RP);

} // namespace sc::regvm

#endif // SC_REGVM_REGVM_H
