//===-- forth/Compiler.h - Forth compiler / evaluator ----------*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic Forth outer interpreter and colon compiler targeting the
/// virtual machine of vm/. Supports:
///
///   : name ... ;            colon definitions, RECURSE, EXIT
///   IF ELSE THEN            conditionals
///   BEGIN UNTIL / AGAIN     loops
///   BEGIN WHILE REPEAT
///   DO LOOP / +LOOP / LEAVE / I / J / UNLOOP
///   VARIABLE CREATE ALLOT , C, CONSTANT HERE
///   ." ..."  S" ..."  CHAR  [CHAR]  ( comments )  \ line comments
///   signed decimal and $hex literals
///
/// This is exactly the role the paper's "compiler" plays: the program that
/// generates virtual machine code. The static stack-caching pass of
/// src/staticcache extends this compiler downstream.
///
//===----------------------------------------------------------------------===//

#ifndef SC_FORTH_COMPILER_H
#define SC_FORTH_COMPILER_H

#include "forth/Lexer.h"
#include "vm/Code.h"
#include "vm/ExecContext.h"
#include "vm/Vm.h"

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sc::forth {

/// What a dictionary name denotes.
struct DictEntry {
  enum class Kind : uint8_t {
    Prim,     ///< a virtual machine primitive
    Colon,    ///< a colon definition (Entry = instruction index)
    Variable, ///< pushes a data-space address (Value)
    Constant, ///< pushes a constant (Value)
  };
  Kind K = Kind::Prim;
  vm::Opcode Op = vm::Opcode::Nop;
  vm::Cell Value = 0;
  uint32_t Entry = 0;
};

/// Outer interpreter plus colon compiler. Appends code to a vm::Code,
/// allocates data space in a vm::Vm, and executes interpret-state words
/// against a persistent top-level ExecContext.
class Compiler {
public:
  /// \p Top must be bound to \p C and \p V; it supplies the persistent
  /// top-level data stack (e.g. for `5 CONSTANT five`).
  Compiler(vm::Code &C, vm::Vm &V, vm::ExecContext &Top);

  /// Compiles/interprets \p Src. Returns false and sets errorMessage() on
  /// the first error. May be called repeatedly to load several sources.
  bool compileSource(std::string_view Src);

  /// Message describing the last failure of compileSource.
  const std::string &errorMessage() const { return Error; }

  /// Dictionary lookup (lower-case name); nullptr if absent.
  const DictEntry *lookup(const std::string &Name) const;

private:
  struct CtrlItem {
    enum class Kind : uint8_t { Orig, Dest, Loop } K;
    uint32_t Index = 0;               ///< branch to patch / branch target
    std::vector<uint32_t> Leaves;     ///< Loop only: LEAVE branches
  };

  vm::Code &Prog;
  vm::Vm &Machine;
  vm::ExecContext &Top;
  std::unordered_map<std::string, DictEntry> Dict;
  std::vector<CtrlItem> CtrlStack;
  std::string Error;
  Lexer *Lex = nullptr; // valid during compileSource
  bool Compiling = false;
  uint32_t CurrentEntry = 0;
  std::string CurrentName;

  bool fail(const std::string &Msg);
  bool compileToken(const std::string &Raw, const std::string &Lower);
  bool interpretToken(const std::string &Raw, const std::string &Lower);
  bool execSnippet(const std::vector<vm::Inst> &Insts);
  bool popTop(vm::Cell &V, const char *Who);

  /// Copies \p S into data space (at compile time) and returns its address.
  vm::Cell internString(const std::string &S);

  bool ctrlPop(CtrlItem::Kind K, CtrlItem &Out, const char *Who);
  CtrlItem *findLoop();
};

} // namespace sc::forth

#endif // SC_FORTH_COMPILER_H
