//===-- forth/Forth.h - Forth system facade --------------------*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The convenient top-level entry point: a System bundles a Vm, a Code, a
/// persistent top-level context and a Compiler. Load Forth source, then
/// run words under any engine. runIsolated executes against a copy of the
/// machine state so repeated runs (e.g. differential engine tests and
/// trace capture) see identical initial conditions.
///
//===----------------------------------------------------------------------===//

#ifndef SC_FORTH_FORTH_H
#define SC_FORTH_FORTH_H

#include "dispatch/Engines.h"
#include "forth/Compiler.h"
#include "vm/Code.h"
#include "vm/ExecContext.h"
#include "vm/Vm.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sc::forth {

/// Result of an isolated word execution.
struct RunReport {
  vm::RunOutcome Outcome;
  std::string Output;         ///< everything the program printed
  std::vector<vm::Cell> DS;   ///< final data stack, bottom first
};

/// A complete Forth system: data space, code, compiler, top-level stack.
class System {
public:
  vm::Vm Machine;
  vm::Code Prog;
  vm::ExecContext Top;
  Compiler Comp;

  System() : Top(Prog, Machine), Comp(Prog, Machine, Top) {}
  System(const System &) = delete;
  System &operator=(const System &) = delete;

  /// Loads (compiles + interprets) Forth source. Returns false and sets
  /// error() on failure.
  bool load(std::string_view Src) { return Comp.compileSource(Src); }

  /// Last error message from load().
  const std::string &error() const { return Comp.errorMessage(); }

  /// Entry index of word \p Name; asserts that the word exists.
  uint32_t entryOf(const std::string &Name) const;

  /// Runs word \p Name with engine \p K against a *copy* of the machine
  /// state (data space, output); the System itself is unchanged.
  RunReport runIsolated(const std::string &Name, dispatch::EngineKind K,
                        uint64_t MaxSteps = UINT64_MAX) const;

  /// Runs word \p Name in place, mutating this System's machine state.
  vm::RunOutcome runInPlace(const std::string &Name, dispatch::EngineKind K,
                            uint64_t MaxSteps = UINT64_MAX);
};

/// Builds a System from source, aborting on compile errors (for tests,
/// benchmarks and workloads whose sources are known-good). Returns a
/// unique_ptr because System is not movable.
std::unique_ptr<System> loadOrDie(std::string_view Src);

} // namespace sc::forth

#endif // SC_FORTH_FORTH_H
