//===-- forth/Forth.cpp - Forth system facade -----------------------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "forth/Forth.h"

#include "support/Assert.h"

#include <cstdio>

using namespace sc;
using namespace sc::forth;
using namespace sc::vm;

uint32_t System::entryOf(const std::string &Name) const {
  const Word *W = Prog.findWord(Name);
  SC_ASSERT(W, "word not found");
  return W->Entry;
}

RunReport System::runIsolated(const std::string &Name,
                              dispatch::EngineKind K,
                              uint64_t MaxSteps) const {
  const Word *W = Prog.findWord(Name);
  SC_ASSERT(W, "word not found");
  Vm Copy = Machine; // isolate data space and output
  Copy.resetOutput();
  ExecContext Ctx(Prog, Copy);
  Ctx.MaxSteps = MaxSteps;
  engine::RunOptions Opts;
  Opts.Entry = W->Entry;
  Opts.MaxSteps = MaxSteps;
  RunReport R;
  R.Outcome = engine::runEngine(dispatch::engineIdOf(K), Prog, Ctx, Opts);
  R.Output = Copy.Out;
  R.DS.assign(Ctx.DS.begin(), Ctx.DS.begin() + Ctx.DsDepth);
  return R;
}

RunOutcome System::runInPlace(const std::string &Name, dispatch::EngineKind K,
                              uint64_t MaxSteps) {
  const Word *W = Prog.findWord(Name);
  SC_ASSERT(W, "word not found");
  ExecContext Ctx(Prog, Machine);
  Ctx.MaxSteps = MaxSteps;
  engine::RunOptions Opts;
  Opts.Entry = W->Entry;
  Opts.MaxSteps = MaxSteps;
  return engine::runEngine(dispatch::engineIdOf(K), Prog, Ctx, Opts);
}

std::unique_ptr<System> sc::forth::loadOrDie(std::string_view Src) {
  auto Sys = std::make_unique<System>();
  if (!Sys->load(Src)) {
    std::fprintf(stderr, "forth load error: %s\n", Sys->error().c_str());
    sc::fatalError("loadOrDie failed");
  }
  std::string VerifyErr;
  if (!Sys->Prog.verify(&VerifyErr)) {
    std::fprintf(stderr, "code verify error: %s\n", VerifyErr.c_str());
    sc::fatalError("loadOrDie produced malformed code");
  }
  return Sys;
}
