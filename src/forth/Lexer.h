//===-- forth/Lexer.h - Forth token stream ---------------------*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for Forth source. Forth lexing is trivial by design: tokens
/// are whitespace-separated; string literals and comments are read by the
/// compiler via readUntil because their syntax is word-defined (e.g.
/// `." hello"` and `( comment )`).
///
//===----------------------------------------------------------------------===//

#ifndef SC_FORTH_LEXER_H
#define SC_FORTH_LEXER_H

#include <string>
#include <string_view>

namespace sc::forth {

/// Whitespace-delimited token stream with line tracking.
class Lexer {
  std::string_view Src;
  size_t Pos = 0;
  unsigned LineNo = 1;

public:
  explicit Lexer(std::string_view Source) : Src(Source) {}

  /// Reads the next token (original spelling). Returns false at end of
  /// input.
  bool next(std::string &Tok);

  /// Reads raw text up to (not including) \p Delim, consuming the
  /// delimiter. Returns false if the delimiter is missing. Used for
  /// string literals and ( comments ).
  bool readUntil(char Delim, std::string &Out);

  /// Skips the rest of the current line (for \ comments).
  void skipLine();

  /// 1-based line number of the most recently read token.
  unsigned line() const { return LineNo; }

  /// True when all input has been consumed.
  bool atEnd() const { return Pos >= Src.size(); }

private:
  void skipSpace();
};

/// Lower-cases \p S in place (ASCII); Forth lookup is case-insensitive.
void toLower(std::string &S);

/// Parses \p Tok as a signed decimal or $-prefixed hex number.
bool parseNumber(const std::string &Tok, int64_t &Value);

} // namespace sc::forth

#endif // SC_FORTH_LEXER_H
