//===-- forth/Compiler.cpp - Forth compiler / evaluator -------------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "forth/Compiler.h"

#include "dispatch/Engines.h"
#include "dispatch/EnginesInternal.h"
#include "support/Assert.h"

using namespace sc;
using namespace sc::forth;
using namespace sc::vm;

/// Primitives the user may not name directly: they carry operands the
/// compiler must synthesize, or are internal machinery.
static bool isHiddenPrimitive(Opcode Op) {
  switch (Op) {
  case Opcode::Lit:
  case Opcode::Branch:
  case Opcode::QBranch:
  case Opcode::LoopBr:
  case Opcode::PlusLoopBr:
  case Opcode::Call:
  case Opcode::Halt:
  case Opcode::DoSetup:
  // Superinstructions are synthesized by the combining pass only.
  case Opcode::LitAdd:
  case Opcode::LitSub:
  case Opcode::LitLt:
  case Opcode::LitEq:
  case Opcode::LitFetch:
  case Opcode::LitStore:
    return true;
  default:
    return false;
  }
}

Compiler::Compiler(Code &C, Vm &V, ExecContext &Top)
    : Prog(C), Machine(V), Top(Top) {
  SC_ASSERT(Top.Prog == &C && Top.Machine == &V,
            "top-level context must be bound to the same code and vm");
  for (unsigned I = 0; I < NumOpcodes; ++I) {
    Opcode Op = static_cast<Opcode>(I);
    if (isHiddenPrimitive(Op))
      continue;
    DictEntry E;
    E.K = DictEntry::Kind::Prim;
    E.Op = Op;
    Dict[mnemonic(Op)] = E;
  }
}

const DictEntry *Compiler::lookup(const std::string &Name) const {
  auto It = Dict.find(Name);
  return It == Dict.end() ? nullptr : &It->second;
}

bool Compiler::fail(const std::string &Msg) {
  Error = "line " + std::to_string(Lex ? Lex->line() : 0) + ": " + Msg;
  return false;
}

bool Compiler::popTop(Cell &V, const char *Who) {
  if (Top.DsDepth == 0)
    return fail(std::string(Who) + ": top-level stack is empty");
  V = Top.pop();
  return true;
}

Cell Compiler::internString(const std::string &S) {
  Cell Addr = Machine.allot(static_cast<Cell>(S.size()) + 1);
  if (!S.empty())
    Machine.writeBytes(Addr, S.data(), S.size());
  return Addr;
}

bool Compiler::execSnippet(const std::vector<Inst> &Insts) {
  uint32_t Saved = Prog.size();
  for (const Inst &In : Insts)
    Prog.Insts.push_back(In);
  Prog.emit(Opcode::Halt);
  Top.RsDepth = 0; // the top level has no persistent return stack
  RunOutcome Outcome = dispatch::runSwitchEngine(Top, Saved);
  Prog.Insts.resize(Saved);
  if (Outcome.Status != RunStatus::Halted)
    return fail(std::string("interpretation failed: ") +
                runStatusName(Outcome.Status));
  return true;
}

bool Compiler::ctrlPop(CtrlItem::Kind K, CtrlItem &Out, const char *Who) {
  if (CtrlStack.empty() || CtrlStack.back().K != K)
    return fail(std::string(Who) + ": unbalanced control structure");
  Out = std::move(CtrlStack.back());
  CtrlStack.pop_back();
  return true;
}

Compiler::CtrlItem *Compiler::findLoop() {
  for (auto It = CtrlStack.rbegin(); It != CtrlStack.rend(); ++It)
    if (It->K == CtrlItem::Kind::Loop)
      return &*It;
  return nullptr;
}

bool Compiler::compileSource(std::string_view Src) {
  Lexer L(Src);
  Lex = &L;
  std::string Raw, Lower;
  bool Ok = true;
  while (Ok && L.next(Raw)) {
    Lower = Raw;
    toLower(Lower);
    if (Lower == "\\") {
      L.skipLine();
      continue;
    }
    if (Lower == "(") {
      std::string Ignored;
      if (!L.readUntil(')', Ignored)) {
        Ok = fail("unterminated ( comment");
        break;
      }
      continue;
    }
    Ok = Compiling ? compileToken(Raw, Lower) : interpretToken(Raw, Lower);
  }
  Lex = nullptr;
  if (Ok && Compiling)
    return fail("unterminated definition of '" + CurrentName + "'");
  return Ok;
}

bool Compiler::compileToken(const std::string &Raw, const std::string &Lower) {
  // --- Definition terminator -------------------------------------------
  if (Lower == ";") {
    if (!CtrlStack.empty())
      return fail("';' with unbalanced control structure");
    Prog.emit(Opcode::Exit);
    Word W;
    W.Name = CurrentName;
    W.Entry = CurrentEntry;
    W.End = Prog.size();
    Prog.Words.push_back(W);
    DictEntry E;
    E.K = DictEntry::Kind::Colon;
    E.Entry = CurrentEntry;
    Dict[CurrentName] = E;
    Compiling = false;
    return true;
  }

  // --- Control flow ------------------------------------------------------
  if (Lower == "if") {
    CtrlStack.push_back({CtrlItem::Kind::Orig,
                         Prog.emit(Opcode::QBranch, 0), {}});
    return true;
  }
  if (Lower == "else") {
    uint32_t Jmp = Prog.emit(Opcode::Branch, 0);
    CtrlItem If;
    if (!ctrlPop(CtrlItem::Kind::Orig, If, "ELSE"))
      return false;
    Prog.Insts[If.Index].Operand = Prog.size();
    Prog.touch();
    CtrlStack.push_back({CtrlItem::Kind::Orig, Jmp, {}});
    return true;
  }
  if (Lower == "then") {
    CtrlItem If;
    if (!ctrlPop(CtrlItem::Kind::Orig, If, "THEN"))
      return false;
    Prog.Insts[If.Index].Operand = Prog.size();
    Prog.touch();
    return true;
  }
  if (Lower == "begin") {
    CtrlStack.push_back({CtrlItem::Kind::Dest, Prog.size(), {}});
    return true;
  }
  if (Lower == "until") {
    CtrlItem Dest;
    if (!ctrlPop(CtrlItem::Kind::Dest, Dest, "UNTIL"))
      return false;
    Prog.emit(Opcode::QBranch, Dest.Index);
    return true;
  }
  if (Lower == "again") {
    CtrlItem Dest;
    if (!ctrlPop(CtrlItem::Kind::Dest, Dest, "AGAIN"))
      return false;
    Prog.emit(Opcode::Branch, Dest.Index);
    return true;
  }
  if (Lower == "while") {
    CtrlItem Dest;
    if (!ctrlPop(CtrlItem::Kind::Dest, Dest, "WHILE"))
      return false;
    CtrlStack.push_back({CtrlItem::Kind::Orig,
                         Prog.emit(Opcode::QBranch, 0), {}});
    CtrlStack.push_back(Dest); // dest stays on top for REPEAT
    return true;
  }
  if (Lower == "repeat") {
    CtrlItem Dest, Orig;
    if (!ctrlPop(CtrlItem::Kind::Dest, Dest, "REPEAT"))
      return false;
    if (!ctrlPop(CtrlItem::Kind::Orig, Orig, "REPEAT"))
      return false;
    Prog.emit(Opcode::Branch, Dest.Index);
    Prog.Insts[Orig.Index].Operand = Prog.size();
    Prog.touch();
    return true;
  }
  if (Lower == "do") {
    Prog.emit(Opcode::DoSetup);
    CtrlStack.push_back({CtrlItem::Kind::Loop, Prog.size(), {}});
    return true;
  }
  if (Lower == "loop" || Lower == "+loop") {
    CtrlItem LoopItem;
    if (!ctrlPop(CtrlItem::Kind::Loop, LoopItem, "LOOP"))
      return false;
    Prog.emit(Lower == "loop" ? Opcode::LoopBr : Opcode::PlusLoopBr,
              LoopItem.Index);
    for (uint32_t Leave : LoopItem.Leaves)
      Prog.Insts[Leave].Operand = Prog.size();
    Prog.touch();
    return true;
  }
  if (Lower == "leave") {
    CtrlItem *LoopItem = findLoop();
    if (!LoopItem)
      return fail("LEAVE outside DO..LOOP");
    Prog.emit(Opcode::Unloop);
    LoopItem->Leaves.push_back(Prog.emit(Opcode::Branch, 0));
    return true;
  }
  if (Lower == "recurse") {
    Prog.emit(Opcode::Call, CurrentEntry);
    return true;
  }

  // --- Literals and strings ---------------------------------------------
  if (Lower == ".\"") {
    std::string S;
    if (!Lex->readUntil('"', S))
      return fail("unterminated .\" string");
    Cell Addr = internString(S);
    Prog.emit(Opcode::Lit, Addr);
    Prog.emit(Opcode::Lit, static_cast<Cell>(S.size()));
    Prog.emit(Opcode::TypeOp);
    return true;
  }
  if (Lower == "s\"") {
    std::string S;
    if (!Lex->readUntil('"', S))
      return fail("unterminated s\" string");
    Cell Addr = internString(S);
    Prog.emit(Opcode::Lit, Addr);
    Prog.emit(Opcode::Lit, static_cast<Cell>(S.size()));
    return true;
  }
  if (Lower == "[char]") {
    std::string C;
    if (!Lex->next(C) || C.empty())
      return fail("[CHAR] needs a character");
    Prog.emit(Opcode::Lit, static_cast<unsigned char>(C[0]));
    return true;
  }

  // --- Dictionary and numbers --------------------------------------------
  if (const DictEntry *E = lookup(Lower)) {
    switch (E->K) {
    case DictEntry::Kind::Prim:
      Prog.emit(E->Op);
      return true;
    case DictEntry::Kind::Colon:
      Prog.emit(Opcode::Call, E->Entry);
      return true;
    case DictEntry::Kind::Variable:
    case DictEntry::Kind::Constant:
      Prog.emit(Opcode::Lit, E->Value);
      return true;
    }
    sc::unreachable("bad DictEntry kind");
  }
  int64_t Num;
  if (parseNumber(Raw, Num)) {
    Prog.emit(Opcode::Lit, Num);
    return true;
  }
  return fail("undefined word '" + Raw + "'");
}

bool Compiler::interpretToken(const std::string &Raw,
                              const std::string &Lower) {
  if (Lower == ":") {
    std::string Name;
    if (!Lex->next(Name) || Name.empty())
      return fail("':' needs a name");
    toLower(Name);
    CurrentName = Name;
    CurrentEntry = Prog.size();
    Compiling = true;
    return true;
  }
  if (Lower == "variable" || Lower == "create") {
    std::string Name;
    if (!Lex->next(Name) || Name.empty())
      return fail(Lower + " needs a name");
    toLower(Name);
    Machine.align();
    DictEntry E;
    E.K = DictEntry::Kind::Variable;
    E.Value = Lower == "variable" ? Machine.allot(CellBytes) : Machine.here();
    Dict[Name] = E;
    return true;
  }
  if (Lower == "constant") {
    std::string Name;
    if (!Lex->next(Name) || Name.empty())
      return fail("CONSTANT needs a name");
    toLower(Name);
    Cell V;
    if (!popTop(V, "CONSTANT"))
      return false;
    DictEntry E;
    E.K = DictEntry::Kind::Constant;
    E.Value = V;
    Dict[Name] = E;
    return true;
  }
  if (Lower == "allot") {
    Cell N;
    if (!popTop(N, "ALLOT"))
      return false;
    if (N < 0)
      return fail("ALLOT with negative size");
    Machine.allot(N);
    return true;
  }
  if (Lower == ",") {
    Cell V;
    if (!popTop(V, "','"))
      return false;
    Machine.align();
    Machine.storeCell(Machine.allot(CellBytes), V);
    return true;
  }
  if (Lower == "c,") {
    Cell V;
    if (!popTop(V, "'c,'"))
      return false;
    Machine.storeByte(Machine.allot(1), V);
    return true;
  }
  if (Lower == "here") {
    Top.push(Machine.here());
    return true;
  }
  if (Lower == "char") {
    std::string C;
    if (!Lex->next(C) || C.empty())
      return fail("CHAR needs a character");
    Top.push(static_cast<unsigned char>(C[0]));
    return true;
  }
  if (Lower == "s\"") {
    std::string S;
    if (!Lex->readUntil('"', S))
      return fail("unterminated s\" string");
    Cell Addr = internString(S);
    Top.push(Addr);
    Top.push(static_cast<Cell>(S.size()));
    return true;
  }

  if (const DictEntry *E = lookup(Lower)) {
    switch (E->K) {
    case DictEntry::Kind::Prim:
      return execSnippet({Inst(E->Op)});
    case DictEntry::Kind::Colon:
      return execSnippet({Inst(Opcode::Call, E->Entry)});
    case DictEntry::Kind::Variable:
    case DictEntry::Kind::Constant:
      Top.push(E->Value);
      return true;
    }
    sc::unreachable("bad DictEntry kind");
  }
  int64_t Num;
  if (parseNumber(Raw, Num)) {
    Top.push(Num);
    return true;
  }
  return fail("undefined word '" + Raw + "'");
}
