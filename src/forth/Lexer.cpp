//===-- forth/Lexer.cpp - Forth token stream ------------------------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "forth/Lexer.h"

#include <cctype>
#include <cstdlib>

using namespace sc::forth;

void Lexer::skipSpace() {
  while (Pos < Src.size() &&
         std::isspace(static_cast<unsigned char>(Src[Pos]))) {
    if (Src[Pos] == '\n')
      ++LineNo;
    ++Pos;
  }
}

bool Lexer::next(std::string &Tok) {
  skipSpace();
  if (Pos >= Src.size())
    return false;
  size_t Start = Pos;
  while (Pos < Src.size() &&
         !std::isspace(static_cast<unsigned char>(Src[Pos])))
    ++Pos;
  Tok.assign(Src.substr(Start, Pos - Start));
  return true;
}

bool Lexer::readUntil(char Delim, std::string &Out) {
  // One leading space separates the introducing word from the payload;
  // skip exactly it, as Forth does.
  if (Pos < Src.size() && Src[Pos] == ' ')
    ++Pos;
  size_t Start = Pos;
  while (Pos < Src.size() && Src[Pos] != Delim) {
    if (Src[Pos] == '\n')
      ++LineNo;
    ++Pos;
  }
  if (Pos >= Src.size())
    return false;
  Out.assign(Src.substr(Start, Pos - Start));
  ++Pos; // consume the delimiter
  return true;
}

void Lexer::skipLine() {
  while (Pos < Src.size() && Src[Pos] != '\n')
    ++Pos;
}

void sc::forth::toLower(std::string &S) {
  for (char &C : S)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
}

bool sc::forth::parseNumber(const std::string &Tok, int64_t &Value) {
  if (Tok.empty())
    return false;
  size_t I = 0;
  bool Neg = false;
  if (Tok[I] == '-') {
    Neg = true;
    ++I;
    if (I >= Tok.size())
      return false;
  }
  int BaseVal = 10;
  if (Tok[I] == '$') {
    BaseVal = 16;
    ++I;
    if (I >= Tok.size())
      return false;
  }
  uint64_t Acc = 0;
  for (; I < Tok.size(); ++I) {
    int Digit;
    char C = Tok[I];
    if (C >= '0' && C <= '9')
      Digit = C - '0';
    else if (BaseVal == 16 && C >= 'a' && C <= 'f')
      Digit = C - 'a' + 10;
    else if (BaseVal == 16 && C >= 'A' && C <= 'F')
      Digit = C - 'A' + 10;
    else
      return false;
    Acc = Acc * BaseVal + static_cast<uint64_t>(Digit);
  }
  Value = Neg ? static_cast<int64_t>(0 - Acc) : static_cast<int64_t>(Acc);
  return true;
}
