//===-- staticcache/StaticEngine.h - Specialized code engine ---*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes the output of the static stack-caching pass with plain direct
/// threading: the cache state was resolved at compile time, so dispatch is
/// a single indirect goto with no per-state tables - the paper's key
/// performance argument for static over dynamic caching (Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef SC_STATICCACHE_STATICENGINE_H
#define SC_STATICCACHE_STATICENGINE_H

#include "staticcache/StaticSpec.h"
#include "vm/ExecContext.h"

namespace sc::staticcache {

/// Runs specialized program \p SP against \p Ctx, starting at the
/// *original* instruction index \p OrigEntry (must be a basic-block
/// leader, e.g. a word entry).
vm::RunOutcome runStaticEngine(const SpecProgram &SP, vm::ExecContext &Ctx,
                               uint32_t OrigEntry);

} // namespace sc::staticcache

#endif // SC_STATICCACHE_STATICENGINE_H
