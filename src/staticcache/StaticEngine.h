//===-- staticcache/StaticEngine.h - Specialized code engine ---*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes the output of the static stack-caching pass with plain direct
/// threading: the cache state was resolved at compile time, so dispatch is
/// a single indirect goto with no per-state tables - the paper's key
/// performance argument for static over dynamic caching (Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef SC_STATICCACHE_STATICENGINE_H
#define SC_STATICCACHE_STATICENGINE_H

#include "staticcache/StaticSpec.h"
#include "vm/ExecContext.h"

namespace sc::staticcache {

/// Runs specialized program \p SP against \p Ctx, starting at the
/// *original* instruction index \p OrigEntry (must be a basic-block
/// leader, e.g. a word entry). Translates per run (into the context's
/// pooled stream buffer); use the prepared form below to amortize
/// translation across runs.
vm::RunOutcome runStaticEngine(const SpecProgram &SP, vm::ExecContext &Ctx,
                               uint32_t OrigEntry);

/// True if specialized handler index \p Handler carries a branch-target
/// operand (a spec index): a state copy of a branch-like VM opcode.
/// Micro-instructions never carry branch targets.
inline bool specIsBranchLike(unsigned Handler) {
  return Handler < 4 * vm::NumOpcodes &&
         vm::isBranchLike(static_cast<vm::Opcode>(Handler % vm::NumOpcodes));
}

/// Exports the specialized engine's handler label table (one dispatch
/// cell per handler index), obtained from a one-time call into the
/// engine core.
void staticHandlerCells(vm::Cell Out[NumHandlers]);

/// Translates \p SP into a prepared two-cell stream [handler, operand]
/// with branch-target operands pre-scaled to threaded offsets. \p Out
/// must hold 2 * SP.Insts.size() cells; \p Handlers comes from
/// staticHandlerCells(). Bumps vm::streamTranslationCounter().
void translateSpecStream(const SpecProgram &SP, const vm::Cell *Handlers,
                         vm::Cell *Out);

/// Runs a stream produced with translateSpecStream() over \p SP.
/// \p Ctx.Prog must be the original program \p SP was compiled from.
vm::RunOutcome runStaticPrepared(const SpecProgram &SP, vm::ExecContext &Ctx,
                                 uint32_t OrigEntry, const vm::Cell *Stream);

} // namespace sc::staticcache

#endif // SC_STATICCACHE_STATICENGINE_H
