//===-- staticcache/StaticOptimal.h - Two-pass optimal codegen -*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The linear-time two-pass optimal code generator of Section 5: a
/// backward cost pass per basic block (dynamic programming over the
/// seven-state organization) followed by a forward emission pass.
/// Normally reached through compileStatic with
/// StaticOptions::TwoPassOptimal set.
///
//===----------------------------------------------------------------------===//

#ifndef SC_STATICCACHE_STATICOPTIMAL_H
#define SC_STATICCACHE_STATICOPTIMAL_H

#include "staticcache/StaticSpec.h"

namespace sc::staticcache {

/// Compiles \p Prog with full lookahead inside basic blocks. The emitted
/// code executes identically to the greedy pass's output but never worse
/// (in emitted instructions per block) and often better.
SpecProgram compileStaticOptimal(const vm::Code &Prog,
                                 const StaticOptions &Opts);

} // namespace sc::staticcache

#endif // SC_STATICCACHE_STATICOPTIMAL_H
