//===-- staticcache/StaticOptimal.cpp - Two-pass optimal codegen ----------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's optimal code generation (Section 5): "Generating optimal
/// code using knowledge of the next instructions in the basic block is
/// possible in linear time using a two-pass algorithm, as a
/// specialization of the approach taken in tree pattern matching
/// [PLG88, FHP91]. The first pass just determines which of the possible
/// code sequences is optimal, the second pass then generates the code."
///
/// Here: for every instruction and every cache state we enumerate the
/// legal compilation plans (absorb / fill-then-absorb / spill-then-absorb
/// / normalize-then-execute), run a backward dynamic program over the
/// seven-state organization per basic block minimizing the number of
/// emitted instructions, and emit along the optimal path forward. This is
/// exactly the foresight the greedy pass lacks (e.g. whether to realize a
/// duplication eagerly or keep it symbolic depends on the instructions
/// that follow).
///
//===----------------------------------------------------------------------===//

#include "staticcache/StaticOptimal.h"

#include "cache/Transition.h"
#include "support/Assert.h"
#include "support/FixedVec.h"

#include <array>
#include <limits>
#include <vector>

using namespace sc;
using namespace sc::cache;
using namespace sc::staticcache;
using namespace sc::vm;

namespace {

/// The seven states of the two-register organization, TOS first.
const std::array<CacheState, 7> &sevenStates() {
  static const std::array<CacheState, 7> States = {
      CacheState(),                 // 0: []
      CacheState::fromSlots({0}),   // 1: [t:r0]
      CacheState::fromSlots({1}),   // 2: [t:r1]
      CacheState::fromSlots({1, 0}), // 3: [t:r1 r0] (exec ES2)
      CacheState::fromSlots({0, 1}), // 4: [t:r0 r1]
      CacheState::fromSlots({0, 0}), // 5: [t:r0 r0] (exec ES3)
      CacheState::fromSlots({1, 1}), // 6: [t:r1 r1]
  };
  return States;
}

int stateIndex(const CacheState &S) {
  const auto &States = sevenStates();
  for (size_t I = 0; I < States.size(); ++I)
    if (States[I] == S)
      return static_cast<int>(I);
  return -1;
}

/// One way to compile one instruction from one entry state.
struct Plan {
  FixedVec<uint8_t, 3> Micros; // Micro values
  bool EmitOp = false;
  uint16_t Handler = 0;
  int NextState = 0; // index into sevenStates()

  unsigned cost() const { return Micros.size() + (EmitOp ? 1 : 0); }
};

/// Micro sequence that spills everything (state -> empty).
void microsToEmpty(const CacheState &S, FixedVec<uint8_t, 3> &Out) {
  if (S.depth() == 2) {
    RegId Bottom = S.reg(1), Tos = S.reg(0);
    if (Bottom == Tos)
      Out.push_back(Bottom == 0 ? MSpill0Dup : MSpill1Dup);
    else
      Out.push_back(Bottom == 0 ? MSpill0Under : MSpill1Under);
    Out.push_back(Tos == 0 ? MSpill0 : MSpill1);
    return;
  }
  if (S.depth() == 1)
    Out.push_back(S.reg(0) == 0 ? MSpill0 : MSpill1);
}

/// Natural (same-depth) normalization of \p S for executing \p Op;
/// returns the execution state, filling \p Micros. ES3 is used when the
/// op has a duplication-state copy.
ExecState normalizeMicros(const CacheState &S, Opcode Op,
                          FixedVec<uint8_t, 3> &Micros) {
  if (S.depth() == 0)
    return ES0;
  if (S.depth() == 1) {
    if (S.reg(0) == 1)
      Micros.push_back(MMove10);
    return ES1;
  }
  if (S == CacheState::fromSlots({0, 0})) {
    if (specExitState(Op, ES3) >= 0)
      return ES3;
    Micros.push_back(MMove01);
    return ES2;
  }
  if (S == CacheState::fromSlots({0, 1}))
    Micros.push_back(MXchg);
  else if (S == CacheState::fromSlots({1, 1}))
    Micros.push_back(MMove10Deep);
  return ES2;
}

/// True if \p S is representable in the seven-state organization.
bool fits(const CacheState &S) {
  return S.depth() <= 2 && stateIndex(S) >= 0;
}

/// Slot layouts of the execution states.
CacheState execStateSlots(ExecState S) {
  switch (S) {
  case ES0:
    return CacheState();
  case ES1:
    return CacheState::fromSlots({0});
  case ES2:
    return CacheState::fromSlots({1, 0});
  case ES3:
    return CacheState::fromSlots({0, 0});
  }
  sc::unreachable("bad ExecState");
}

/// All compilation plans for \p In entered in state \p From.
void plansFor(const Inst &In, const CacheState &From, bool AbsorbManips,
              std::vector<Plan> &Out) {
  Out.clear();
  Opcode Op = In.Op;
  StackEffect E = dataEffect(Op);

  if (AbsorbManips && isAbsorbableManip(Op)) {
    // Direct absorption.
    if (From.depth() >= E.In &&
        From.depth() - E.In + E.Out <= 2) {
      CacheState Next = applyManipToState(From, Op);
      if (fits(Next)) {
        Plan P;
        P.NextState = stateIndex(Next);
        Out.push_back(P);
      }
    }
    // Spill the untouched bottom item, then absorb (dup on a full cache).
    if (From.depth() == 2 && E.In <= 1 &&
        From.depth() - 1 - E.In + E.Out <= 2u) {
      RegId Bottom = From.reg(1), Tos = From.reg(0);
      CacheState Shallow;
      Shallow.pushReg(Tos);
      CacheState Next = applyManipToState(Shallow, Op);
      if (fits(Next)) {
        Plan P;
        if (Bottom == Tos)
          P.Micros.push_back(Bottom == 0 ? MSpill0Dup : MSpill1Dup);
        else
          P.Micros.push_back(Bottom == 0 ? MSpill0Under : MSpill1Under);
        P.NextState = stateIndex(Next);
        Out.push_back(P);
      }
    }
    // Fill one missing argument, then absorb. Legal because the
    // manipulation itself guarantees the stack is deep enough (it traps
    // identically otherwise).
    if (From.depth() + 1 == E.In) {
      CacheState Filled;
      Micro FillM;
      if (From.depth() == 0) {
        Filled = CacheState::fromSlots({0});
        FillM = MFillTos;
      } else {
        RegId Tos = From.reg(0);
        RegId Free = Tos == 0 ? 1 : 0;
        Filled = CacheState();
        Filled.pushReg(Free);
        Filled.pushReg(Tos);
        FillM = Tos == 0 ? MFillSnd1 : MFillSnd0;
      }
      if (Filled.depth() >= E.In &&
          Filled.depth() - E.In + E.Out <= 2) {
        CacheState Next = applyManipToState(Filled, Op);
        if (fits(Next)) {
          Plan P;
          P.Micros.push_back(FillM);
          P.NextState = stateIndex(Next);
          Out.push_back(P);
        }
      }
    }
  }

  // Execute the instruction. Hot ops (and all control transfers) have
  // specialized copies; everything else runs the generic state-0 copy.
  if (specExitState(Op, ES0) >= 0 || isControl(Op)) {
    FixedVec<uint8_t, 3> Micros;
    ExecState S = normalizeMicros(From, Op, Micros);
    int Exit = specExitState(Op, S);
    SC_ASSERT(Exit >= 0, "specialized handler missing");
    Plan P;
    P.Micros = Micros;
    P.EmitOp = true;
    P.Handler = opHandler(S, Op);
    P.NextState = stateIndex(execStateSlots(static_cast<ExecState>(Exit)));
    Out.push_back(P);
    // Alternative: materialize the duplication instead of using the ES3
    // copy (occasionally better for what follows).
    if (S == ES3) {
      Plan Q;
      Q.Micros.push_back(MMove01);
      Q.EmitOp = true;
      Q.Handler = opHandler(ES2, Op);
      int Exit2 = specExitState(Op, ES2);
      SC_ASSERT(Exit2 >= 0, "ES2 handler missing");
      Q.NextState =
          stateIndex(execStateSlots(static_cast<ExecState>(Exit2)));
      Out.push_back(Q);
    }
    return;
  }

  // Rare instruction: generic copy, empty state before and after.
  Plan P;
  microsToEmpty(From, P.Micros);
  P.EmitOp = true;
  P.Handler = opHandler(ES0, Op);
  P.NextState = 0;
  Out.push_back(P);
}

} // namespace

SpecProgram sc::staticcache::compileStaticOptimal(const Code &Prog,
                                                  const StaticOptions &Opts) {
  const auto &States = sevenStates();
  constexpr unsigned NumStates = 7;
  constexpr unsigned Infinity = std::numeric_limits<unsigned>::max() / 4;

  std::vector<bool> Leaders = Prog.computeLeaders();
  SpecProgram SP;
  // Non-leaders keep the InvalidSpec sentinel: they have no canonical
  // entry, and the engine traps exits that target them.
  SP.OrigToSpec.assign(Prog.Insts.size(), InvalidSpec);
  SP.OrigInsts = Prog.Insts.size();
  std::vector<std::pair<uint32_t, uint32_t>> Patches;

  uint32_t I = 0;
  const uint32_t N = static_cast<uint32_t>(Prog.Insts.size());
  while (I < N) {
    // Identify the basic block [I, End).
    uint32_t End = I;
    while (End < N && (End == I || !Leaders[End])) {
      bool Control = isControl(Prog.Insts[End].Op);
      ++End;
      if (Control)
        break;
    }
    bool EndsWithControl = isControl(Prog.Insts[End - 1].Op);
    uint32_t Len = End - I;

    // Backward pass: Cost[k][s] = cheapest compilation of insts
    // I+k .. End-1 entered in state s.
    std::vector<std::array<unsigned, NumStates>> Cost(Len + 1);
    std::vector<std::array<uint8_t, NumStates>> Choice(Len);
    for (unsigned S = 0; S < NumStates; ++S) {
      if (EndsWithControl) {
        Cost[Len][S] = 0; // the control op already forced the empty state
      } else {
        FixedVec<uint8_t, 3> Sp;
        microsToEmpty(States[S], Sp);
        Cost[Len][S] = Sp.size(); // fall-through reconcile to canonical
      }
    }
    std::vector<Plan> Plans;
    for (uint32_t K = Len; K-- > 0;) {
      const Inst &In = Prog.Insts[I + K];
      for (unsigned S = 0; S < NumStates; ++S) {
        plansFor(In, States[S], Opts.AbsorbManips, Plans);
        unsigned Best = Infinity;
        uint8_t BestIdx = 0;
        for (size_t P = 0; P < Plans.size(); ++P) {
          unsigned C = Plans[P].cost() +
                       Cost[K + 1][static_cast<unsigned>(Plans[P].NextState)];
          if (C < Best) {
            Best = C;
            BestIdx = static_cast<uint8_t>(P);
          }
        }
        Cost[K][S] = Best;
        Choice[K][S] = BestIdx;
      }
    }

    // Forward pass: emit along the optimal path from the canonical state.
    SP.OrigToSpec[I] = static_cast<uint32_t>(SP.Insts.size());
    unsigned S = 0; // blocks start empty
    for (uint32_t K = 0; K < Len; ++K) {
      const Inst &In = Prog.Insts[I + K];
      if (Leaders[I + K]) // inner leaders: record the (canonical) position
        SP.OrigToSpec[I + K] = static_cast<uint32_t>(SP.Insts.size());
      plansFor(In, States[S], Opts.AbsorbManips, Plans);
      const Plan &P = Plans[Choice[K][S]];
      for (uint8_t M : P.Micros) {
        SP.Insts.push_back(SpecInst{microHandler(static_cast<Micro>(M)), 0});
        SP.SpecToOrig.push_back(I + K);
        ++SP.MicrosEmitted;
      }
      if (P.EmitOp) {
        if (isBranchLike(In.Op))
          Patches.push_back({static_cast<uint32_t>(SP.Insts.size()),
                             static_cast<uint32_t>(In.Operand)});
        SP.Insts.push_back(SpecInst{P.Handler, In.Operand});
        SP.SpecToOrig.push_back(I + K);
      } else {
        ++SP.ManipsRemoved;
      }
      S = static_cast<unsigned>(P.NextState);
    }
    if (!EndsWithControl) {
      FixedVec<uint8_t, 3> Sp;
      microsToEmpty(States[S], Sp);
      // Fall-through reconcile: these micros prepare the next block's
      // leader (same convention as the greedy pass).
      for (uint8_t M : Sp) {
        SP.Insts.push_back(SpecInst{microHandler(static_cast<Micro>(M)), 0});
        SP.SpecToOrig.push_back(End < N ? End : End - 1);
        ++SP.MicrosEmitted;
      }
    }
    I = End;
  }

  for (const auto &[SpecIdx, Target] : Patches)
    SP.Insts[SpecIdx].Operand = SP.OrigToSpec[Target];
  return SP;
}
