//===-- staticcache/StaticSpec.h - Specialized code format -----*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The output format of the static stack-caching compiler pass (Section
/// 5) and the handler-index encoding shared between the pass and the
/// specialized engine.
///
/// The pass tracks the cache state through a seven-state organization
/// over two registers (all assignments of at most two stack items to R0
/// and R1, duplicates allowed - Figure 17's shape):
///
///     []  [t:r0]  [t:r1]  [t:r1 r0]  [t:r0 r1]  [t:r0 r0]  [t:r1 r1]
///
/// Stack manipulations whose result stays representable are removed from
/// the instruction stream entirely. Other instructions are normalized
/// (with explicit spill/fill/move micro-instructions) to one of three
/// execution states - empty, TOS in R0, or TOS in R1 with the second item
/// in R0 - for which specialized handler copies exist, and the handler is
/// selected at compile time, so the engine runs plain direct threading
/// with no per-state tables (the paper's core advantage of static over
/// dynamic caching). The canonical state at basic-block boundaries and
/// calls is the empty state.
///
//===----------------------------------------------------------------------===//

#ifndef SC_STATICCACHE_STATICSPEC_H
#define SC_STATICCACHE_STATICSPEC_H

#include "vm/Code.h"

#include <cstdint>
#include <vector>

namespace sc::staticcache {

/// The execution states specialized handlers exist for. ES3 is the
/// duplication state of Figure 17: after an absorbed `dup` both top
/// items live in R0, so e.g. `dup *` becomes a single square instruction
/// with no moves at all.
enum ExecState : uint8_t {
  ES0 = 0, ///< nothing cached
  ES1 = 1, ///< TOS in R0
  ES2 = 2, ///< TOS in R1, second item in R0
  ES3 = 3, ///< TOS and second item both in R0 (one duplication)
};

/// Cache-management micro-instructions the pass may emit. Several spill
/// variants exist because each handler must know the exact cache shape
/// *after* itself (for correct write-back if execution stops on it).
enum Micro : uint8_t {
  MSpill0,      ///< push R0; cache empty afterwards
  MSpill1,      ///< push R1; cache empty afterwards
  MSpill0Under, ///< push R0 (deepest); TOS remains in R1
  MSpill1Under, ///< push R1 (deepest); TOS remains in R0
  MSpill0Dup,   ///< push R0 (deepest of a dup pair); TOS remains in R0
  MSpill1Dup,   ///< push R1 (deepest of a dup pair); TOS remains in R1
  MXchg,        ///< exchange R0 and R1; two items stay cached
  MMove01,      ///< R1 = R0; two items cached afterwards
  MMove10,      ///< R0 = R1; one item cached afterwards
  MMove10Deep,  ///< R0 = R1; two items cached afterwards
  MFillTos,     ///< R0 = pop memory (cache was empty)
  MFillSnd0,    ///< R0 = pop memory as second item (TOS is in R1)
  MFillSnd1,    ///< R1 = pop memory as second item (TOS is in R0)
  NumMicros,
};

/// Handler index: specialized opcode handlers first (state-major), then
/// the micro-instructions.
inline uint16_t opHandler(ExecState S, vm::Opcode Op) {
  return static_cast<uint16_t>(static_cast<unsigned>(S) * vm::NumOpcodes +
                               static_cast<unsigned>(Op));
}
inline uint16_t microHandler(Micro M) {
  return static_cast<uint16_t>(4 * vm::NumOpcodes + M);
}
inline constexpr unsigned NumHandlers = 4 * vm::NumOpcodes + NumMicros;

/// One instruction of specialized code.
struct SpecInst {
  uint16_t Handler;
  vm::Cell Operand;
};

/// Sentinel in SpecProgram::OrigToSpec for original instructions that are
/// not basic-block leaders: they have no canonical specialized entry, so
/// nothing (branch, exit, resume) may transfer control to them.
inline constexpr uint32_t InvalidSpec = UINT32_MAX;

/// A statically cached program.
struct SpecProgram {
  std::vector<SpecInst> Insts;
  /// Maps original instruction indices to specialized indices. Valid for
  /// basic-block leaders — which is all a branch, a canonical return
  /// address, or a resume may target; InvalidSpec everywhere else.
  std::vector<uint32_t> OrigToSpec;
  /// Maps every specialized instruction back to the original instruction
  /// it was emitted for (micros map to the instruction they prepare).
  /// Lets a trap in specialized code be reported against the original
  /// program counter, like every other engine.
  std::vector<uint32_t> SpecToOrig;
  /// Statistics for the benches and EXPERIMENTS.md.
  uint64_t ManipsRemoved = 0; ///< stack manipulations optimized away
  uint64_t MicrosEmitted = 0; ///< reconcile/spill/fill instructions added
  uint64_t OrigInsts = 0;
};

/// True when specialized index \p I is a recorded canonical block entry:
/// the position an original leader maps to, entered with the cache in
/// state 0 and all stack items in memory. These are the only positions
/// where the static engine takes a StepLimit stop (so the recorded
/// resume PC is re-enterable) and the only original PCs that may be
/// resumed on a static engine after a stop elsewhere.
inline bool isCanonicalEntry(const SpecProgram &SP, vm::UCell I) {
  return I < SP.SpecToOrig.size() && SP.OrigToSpec[SP.SpecToOrig[I]] == I;
}

/// Pass options (the ablation bench toggles these).
struct StaticOptions {
  bool AbsorbManips = true;
  /// Use the paper's two-pass optimal code generation (Section 5): a
  /// backward cost pass over each basic block chooses transitions with
  /// full lookahead, then a forward pass emits them. The default is the
  /// greedy single-pass scheme.
  bool TwoPassOptimal = false;
};

/// Exit execution state of \p Op's specialized handler entered in
/// \p S, or -1 if no specialized handler exists (the instruction then
/// runs in the generic state-0 copy and exits in state 0).
int specExitState(vm::Opcode Op, ExecState S);

/// Compiles \p Prog into statically cached specialized code.
SpecProgram compileStatic(const vm::Code &Prog,
                          const StaticOptions &Opts = StaticOptions());

/// Renders the specialized code as text (for the listing example and
/// debugging).
std::string disasmSpec(const SpecProgram &SP);

} // namespace sc::staticcache

#endif // SC_STATICCACHE_STATICSPEC_H
