//===-- staticcache/StaticPass.cpp - The static caching pass --------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "staticcache/StaticSpec.h"

#include "cache/CacheState.h"
#include "cache/Transition.h"
#include "staticcache/StaticOptimal.h"
#include "support/Assert.h"

#include <cstdio>
#include <string>

using namespace sc;
using namespace sc::cache;
using namespace sc::staticcache;
using namespace sc::vm;

int sc::staticcache::specExitState(Opcode Op, ExecState S) {
  switch (Op) {
  // Binary operations: result cached in R0. In the duplication state ES3
  // both inputs are the same register - `dup *` is one square, no moves.
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Mod:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Lshift:
  case Opcode::Rshift:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::Eq:
  case Opcode::Ne:
  case Opcode::Lt:
  case Opcode::Gt:
  case Opcode::Le:
  case Opcode::Ge:
  case Opcode::ULt:
    return ES1;
  // Unary operations: replace the TOS; from ES3 the result goes to R1
  // and the surviving duplicate stays in R0.
  case Opcode::Negate:
  case Opcode::Invert:
  case Opcode::Abs:
  case Opcode::OnePlus:
  case Opcode::OneMinus:
  case Opcode::TwoStar:
  case Opcode::TwoSlash:
  case Opcode::Cells:
  case Opcode::ZeroEq:
  case Opcode::ZeroNe:
  case Opcode::ZeroLt:
  case Opcode::ZeroGt:
  case Opcode::Fetch:
  case Opcode::CFetch:
  // lit-fused superinstructions with a unary shape ( a -- a (+) n ).
  case Opcode::LitAdd:
  case Opcode::LitSub:
  case Opcode::LitLt:
  case Opcode::LitEq:
    if (S == ES0)
      return ES1;
    return S == ES3 ? ES2 : static_cast<int>(S);
  // Pushes.
  case Opcode::Lit:
  case Opcode::LitFetch:
  case Opcode::RFrom:
  case Opcode::RFetch:
  case Opcode::LoopI:
    return S == ES0 ? ES1 : ES2;
  // ( .. x y -- ) consumers.
  case Opcode::Store:
  case Opcode::CStore:
  case Opcode::PlusStore:
  case Opcode::TypeOp:
    return ES0;
  // Single-item consumers.
  case Opcode::ToR:
  case Opcode::Emit:
  case Opcode::Dot:
  case Opcode::LitStore:
    if (S == ES2 || S == ES3)
      return ES1;
    return ES0;
  // State-neutral (no ES3 copy; the pass materializes first).
  case Opcode::Cr:
  case Opcode::Space:
    return S == ES3 ? -1 : static_cast<int>(S);
  // over: ( a b -- a b a ), deepest item spilled if needed; TOS in R1.
  case Opcode::Over:
    return ES2;
  // (do) moves two items to the return stack.
  case Opcode::DoSetup:
    return ES0;
  // Control transfers perform the transition to the canonical (empty)
  // state themselves - the paper's "have the branch perform the
  // transition" - so their specialized copies spill internally.
  case Opcode::Branch:
  case Opcode::QBranch:
  case Opcode::Call:
  case Opcode::Exit:
  case Opcode::LoopBr:
  case Opcode::PlusLoopBr:
  case Opcode::Halt:
    return ES0;
  default:
    return -1;
  }
}

namespace {

/// Slot layouts of the execution states, TOS first.
CacheState execStateSlots(ExecState S) {
  switch (S) {
  case ES0:
    return CacheState();
  case ES1:
    return CacheState::fromSlots({0});
  case ES2:
    return CacheState::fromSlots({1, 0});
  case ES3:
    return CacheState::fromSlots({0, 0});
  }
  sc::unreachable("bad ExecState");
}

class PassDriver {
  const Code &Prog;
  const StaticOptions &Opts;
  SpecProgram SP;
  CacheState State; // current tracked state, TOS first
  uint32_t CurOrig = 0; // original index the emitted code belongs to
  std::vector<std::pair<uint32_t, uint32_t>> Patches; // spec idx, orig target

public:
  PassDriver(const Code &P, const StaticOptions &O) : Prog(P), Opts(O) {}

  SpecProgram run() {
    std::vector<bool> Leaders = Prog.computeLeaders();
    // Non-leaders keep the InvalidSpec sentinel: they have no canonical
    // entry, and the engine traps exits that target them.
    SP.OrigToSpec.assign(Prog.Insts.size(), InvalidSpec);
    SP.OrigInsts = Prog.Insts.size();

    for (uint32_t I = 0; I < Prog.Insts.size(); ++I) {
      CurOrig = I;
      if (Leaders[I]) {
        // Control-flow convention: every block begins in the canonical
        // (empty) state; the instruction before a fall-through boundary
        // pays the reconcile.
        normalizeToS0();
        SP.OrigToSpec[I] = static_cast<uint32_t>(SP.Insts.size());
      }
      compileInst(Prog.Insts[I]);
    }
    for (const auto &[SpecIdx, Target] : Patches)
      SP.Insts[SpecIdx].Operand = SP.OrigToSpec[Target];
    return std::move(SP);
  }

private:
  void emit(uint16_t Handler, Cell Operand = 0) {
    SP.Insts.push_back(SpecInst{Handler, Operand});
    SP.SpecToOrig.push_back(CurOrig);
  }

  void emitMicro(Micro M) {
    emit(microHandler(M));
    ++SP.MicrosEmitted;
  }

  bool stateIs(std::initializer_list<RegId> TosFirst) const {
    return State == CacheState::fromSlots(TosFirst);
  }

  /// Spills everything, bottom first; state becomes empty (canonical).
  void normalizeToS0() {
    if (State.depth() == 2) {
      // The first (deepest-item) spill keeps the TOS cached; pick the
      // variant that matches the remaining shape.
      RegId Bottom = State.reg(1), Tos = State.reg(0);
      if (Bottom == Tos)
        emitMicro(Bottom == 0 ? MSpill0Dup : MSpill1Dup);
      else
        emitMicro(Bottom == 0 ? MSpill0Under : MSpill1Under);
      CacheState T;
      T.pushReg(Tos);
      State = T;
    }
    if (State.depth() == 1)
      emitMicro(State.reg(0) == 0 ? MSpill0 : MSpill1);
    State = CacheState();
  }

  /// Normalizes to an execution state \p Op has a specialized copy for,
  /// emitting register moves. Returns the resulting execution state.
  ExecState normalizeFor(vm::Opcode Op) {
    SC_ASSERT(State.depth() <= 2, "state deeper than the register file");
    if (State.depth() == 0)
      return ES0;
    if (State.depth() == 1) {
      if (stateIs({1})) {
        emitMicro(MMove10);
        State = execStateSlots(ES1);
      }
      SC_ASSERT(stateIs({0}), "bad depth-1 normalization");
      return ES1;
    }
    if (stateIs({0, 0})) {
      // The duplication state has its own specialized copies where
      // available; otherwise materialize the duplicate.
      if (specExitState(Op, ES3) >= 0)
        return ES3;
      emitMicro(MMove01);
    } else if (stateIs({0, 1})) {
      emitMicro(MXchg);
    } else if (stateIs({1, 1})) {
      emitMicro(MMove10Deep);
    }
    State = execStateSlots(ES2);
    return ES2;
  }

  void compileInst(const Inst &In) {
    Opcode Op = In.Op;

    if (Opts.AbsorbManips && isAbsorbableManip(Op) && tryAbsorb(Op))
      return;

    if (isControl(Op)) {
      compileControl(In);
      return;
    }

    if (specExitState(Op, ES0) >= 0) {
      ExecState S = normalizeFor(In.Op);
      emit(opHandler(S, Op), In.Operand);
      int Exit = specExitState(Op, S);
      SC_ASSERT(Exit >= 0, "specialized handler missing");
      State = execStateSlots(static_cast<ExecState>(Exit));
      return;
    }

    // Rare instruction: only a generic state-0 copy exists.
    normalizeToS0();
    emit(opHandler(ES0, Op), In.Operand);
    State = CacheState();
  }

  /// Tries to turn a stack manipulation into a pure compile-time state
  /// change (possibly after one fill micro-op). Returns true on success.
  bool tryAbsorb(Opcode Op) {
    StackEffect E = dataEffect(Op);
    if (State.depth() + E.Out > 2u + E.In) {
      // The result would not fit in two registers. If the manipulation
      // does not touch the deepest cached item, spill it and absorb
      // anyway (one micro-op instead of a full normalize + execute);
      // this is the common `dup` on a full cache.
      if (State.depth() != 2 || E.In > 1 ||
          State.depth() - 1u - E.In + E.Out > 2u)
        return false;
      RegId Bottom = State.reg(1), Tos = State.reg(0);
      if (Bottom == Tos)
        emitMicro(Bottom == 0 ? MSpill0Dup : MSpill1Dup);
      else
        emitMicro(Bottom == 0 ? MSpill0Under : MSpill1Under);
      CacheState T;
      T.pushReg(Tos);
      State = T;
    }

    CacheState S = State;
    unsigned Fills = 0;
    while (S.depth() < E.In) {
      // Fill items under the cached ones from memory. Allow at most one
      // fill: more would cost as much as just executing the word.
      if (++Fills > 1)
        return false;
      if (S.depth() == 0) {
        S = execStateSlots(ES1); // fill TOS into R0
      } else if (S.depth() == 1) {
        RegId Tos = S.reg(0);
        RegId Free = Tos == 0 ? 1 : 0;
        S = CacheState();
        S.pushReg(Free); // the filled second item
        S.pushReg(Tos);  // TOS stays where it is
      } else {
        return false; // no register free for a fill
      }
    }
    CacheState After = applyManipToState(S, Op);
    if (After.depth() > 2)
      return false;
    // A fill that leads to a duplication state does not pay: the copy is
    // materialized (with a move) by the next instruction anyway, so
    // executing the manipulation directly would have been cheaper. This
    // is the foresight problem the paper's two-pass optimal code
    // generator solves; the greedy pass just avoids the known-bad case.
    if (Fills > 0 && After.hasDuplicate())
      return false;

    // Commit: emit the fills, note the state change, drop the word.
    CacheState T = State;
    while (T.depth() < E.In) {
      if (T.depth() == 0) {
        emitMicro(MFillTos);
        T = execStateSlots(ES1);
      } else {
        emitMicro(T.reg(0) == 0 ? MFillSnd1 : MFillSnd0);
        RegId Tos = T.reg(0);
        RegId Free = Tos == 0 ? 1 : 0;
        T = CacheState();
        T.pushReg(Free);
        T.pushReg(Tos);
      }
    }
    SC_ASSERT(T == S, "fill emission diverged from planning");
    State = After;
    ++SP.ManipsRemoved;
    return true;
  }

  void compileControl(const Inst &In) {
    // The control transfer itself reconciles to the canonical (empty)
    // state - its specialized copies spill internally, so reaching an
    // execution state (register moves only) is all that is needed here.
    ExecState S = normalizeFor(In.Op);
    if (isBranchLike(In.Op))
      Patches.push_back({static_cast<uint32_t>(SP.Insts.size()),
                         static_cast<uint32_t>(In.Operand)});
    emit(opHandler(S, In.Op), In.Operand);
    State = CacheState();
  }
};

} // namespace

SpecProgram sc::staticcache::compileStatic(const Code &Prog,
                                           const StaticOptions &Opts) {
  if (Opts.TwoPassOptimal)
    return compileStaticOptimal(Prog, Opts);
  return PassDriver(Prog, Opts).run();
}

std::string sc::staticcache::disasmSpec(const SpecProgram &SP) {
  static const char *const MicroNames[NumMicros] = {
      "spill r0",        "spill r1",        "spill r0 (under)",
      "spill r1 (under)", "spill r0 (dup)",  "spill r1 (dup)",
      "xchg r0,r1",      "move r0->r1",     "move r1->r0",
      "move r1->r0 (2)", "fill tos->r0",    "fill 2nd->r0",
      "fill 2nd->r1",
  };
  std::string Out;
  for (size_t I = 0; I < SP.Insts.size(); ++I) {
    const SpecInst &SI = SP.Insts[I];
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%6zu  ", I);
    Out += Buf;
    if (SI.Handler >= 4 * NumOpcodes) {
      Out += ". ";
      Out += MicroNames[SI.Handler - 4 * NumOpcodes];
    } else {
      unsigned S = SI.Handler / NumOpcodes;
      Opcode Op = static_cast<Opcode>(SI.Handler % NumOpcodes);
      Out += mnemonic(Op);
      if (opInfo(Op).HasOperand) {
        Out += ' ';
        Out += std::to_string(SI.Operand);
      }
      Out += "  (state ";
      Out += std::to_string(S);
      Out += ')';
    }
    Out += '\n';
  }
  return Out;
}
