//===-- staticcache/StaticEngine.cpp - Specialized code engine ------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "staticcache/StaticEngine.h"

#include "metrics/Counters.h"
#include "vm/ArithOps.h"
#include "vm/Translate.h"
#include "support/Assert.h"

using namespace sc;
using namespace sc::staticcache;
using namespace sc::vm;

#ifdef SC_STATS
/// Decodes the handler index of the specialized instruction about to be
/// dispatched: VM opcodes count as (cached) dispatches, micro-instructions
/// count as reconcile traffic. The duplication state ES3 holds two logical
/// items in one register; it reports cached depth 2.
static void noteStaticDispatch(sc::metrics::Counters &C,
                               const SpecProgram &SP, UCell SpecIdx) {
  const unsigned H = SP.Insts[SpecIdx].Handler;
  if (H < 4 * NumOpcodes) {
    const unsigned State = H / NumOpcodes;
    sc::metrics::noteCachedDispatch(C, static_cast<Opcode>(H % NumOpcodes),
                                    State == 3 ? 2u : State, 2u);
    return;
  }
  switch (H - 4 * NumOpcodes) {
  case MSpill0:
  case MSpill1:
  case MSpill0Under:
  case MSpill1Under:
  case MSpill0Dup:
  case MSpill1Dup:
    ++C.ReconcileStores;
    break;
  case MFillTos:
  case MFillSnd0:
  case MFillSnd1:
    ++C.ReconcileLoads;
    break;
  default: // MXchg, MMove01, MMove10, MMove10Deep
    ++C.ReconcileMoves;
    break;
  }
}
#endif

namespace {

/// Executes prepared spec stream \p Stream (2 * SPP->Insts.size() cells,
/// see translateSpecStream) from original entry \p OrigEntry. When
/// \p HandlersOut is non-null, fills it with the handler label table and
/// returns without running; \p SPP and \p CtxPtr may then be null.
/// noinline keeps the compiler from cloning the function, which would
/// give the export and execution paths distinct label addresses.
__attribute__((noinline)) RunOutcome
staticCore(const SpecProgram *SPP, ExecContext *CtxPtr, uint32_t OrigEntry,
           const Cell *Stream, Cell *HandlersOut) {
  // Label table: generic state-0 copies for every opcode, specialized
  // copies for hot (state, op) pairs, micro-instructions, and a trap for
  // combinations the pass never emits.
  static const void *const GenericLabels[NumOpcodes] = {
#define SC_OPCODE_LABEL(Name, Mn, DI, DO, RI, RO, HasOp, Kind) &&G_##Name,
      SC_FOR_EACH_OPCODE(SC_OPCODE_LABEL)
#undef SC_OPCODE_LABEL
  };
  const void *Labels[NumHandlers];
  for (unsigned I = 0; I < NumOpcodes; ++I) {
    Labels[I] = GenericLabels[I];
    Labels[NumOpcodes + I] = &&BadHandler;
    Labels[2 * NumOpcodes + I] = &&BadHandler;
    Labels[3 * NumOpcodes + I] = &&BadHandler;
  }
#define SC_SPEC(State, Name)                                                   \
  Labels[(State)*NumOpcodes + static_cast<unsigned>(Opcode::Name)] =           \
      &&S##State##_##Name
#define SC_SPEC3(Name)                                                         \
  do {                                                                         \
    SC_SPEC(0, Name);                                                          \
    SC_SPEC(1, Name);                                                          \
    SC_SPEC(2, Name);                                                          \
  } while (0)
  SC_SPEC3(Lit);
  SC_SPEC3(Add);
  SC_SPEC3(Sub);
  SC_SPEC3(Mul);
  SC_SPEC3(Div);
  SC_SPEC3(Mod);
  SC_SPEC3(And);
  SC_SPEC3(Or);
  SC_SPEC3(Xor);
  SC_SPEC3(Lshift);
  SC_SPEC3(Rshift);
  SC_SPEC3(Min);
  SC_SPEC3(Max);
  SC_SPEC3(Eq);
  SC_SPEC3(Ne);
  SC_SPEC3(Lt);
  SC_SPEC3(Gt);
  SC_SPEC3(Le);
  SC_SPEC3(Ge);
  SC_SPEC3(ULt);
  SC_SPEC3(Negate);
  SC_SPEC3(Invert);
  SC_SPEC3(Abs);
  SC_SPEC3(OnePlus);
  SC_SPEC3(OneMinus);
  SC_SPEC3(TwoStar);
  SC_SPEC3(TwoSlash);
  SC_SPEC3(Cells);
  SC_SPEC3(ZeroEq);
  SC_SPEC3(ZeroNe);
  SC_SPEC3(ZeroLt);
  SC_SPEC3(ZeroGt);
  SC_SPEC3(Fetch);
  SC_SPEC3(CFetch);
  SC_SPEC3(Store);
  SC_SPEC3(CStore);
  SC_SPEC3(PlusStore);
  SC_SPEC3(ToR);
  SC_SPEC3(RFrom);
  SC_SPEC3(RFetch);
  SC_SPEC3(LoopI);
  SC_SPEC3(Over);
  SC_SPEC3(Emit);
  SC_SPEC3(Dot);
  SC_SPEC3(Cr);
  SC_SPEC3(Space);
  SC_SPEC3(TypeOp);
  SC_SPEC3(DoSetup);
  // Control transfers: state 0 uses the generic copy; the cached-state
  // copies spill internally ("the branch performs the transition").
  SC_SPEC(1, QBranch);
  SC_SPEC(2, QBranch);
  SC_SPEC(1, Branch);
  SC_SPEC(2, Branch);
  SC_SPEC(1, Call);
  SC_SPEC(2, Call);
  SC_SPEC(1, Exit);
  SC_SPEC(2, Exit);
  SC_SPEC(1, LoopBr);
  SC_SPEC(2, LoopBr);
  SC_SPEC(1, PlusLoopBr);
  SC_SPEC(2, PlusLoopBr);
  SC_SPEC(1, Halt);
  SC_SPEC(2, Halt);
  // Duplication-state (ES3) copies: both top items in R0.
  SC_SPEC(3, Lit);
  SC_SPEC(3, Add);
  SC_SPEC(3, Sub);
  SC_SPEC(3, Mul);
  SC_SPEC(3, Div);
  SC_SPEC(3, Mod);
  SC_SPEC(3, And);
  SC_SPEC(3, Or);
  SC_SPEC(3, Xor);
  SC_SPEC(3, Lshift);
  SC_SPEC(3, Rshift);
  SC_SPEC(3, Min);
  SC_SPEC(3, Max);
  SC_SPEC(3, Eq);
  SC_SPEC(3, Ne);
  SC_SPEC(3, Lt);
  SC_SPEC(3, Gt);
  SC_SPEC(3, Le);
  SC_SPEC(3, Ge);
  SC_SPEC(3, ULt);
  SC_SPEC(3, Negate);
  SC_SPEC(3, Invert);
  SC_SPEC(3, Abs);
  SC_SPEC(3, OnePlus);
  SC_SPEC(3, OneMinus);
  SC_SPEC(3, TwoStar);
  SC_SPEC(3, TwoSlash);
  SC_SPEC(3, Cells);
  SC_SPEC(3, ZeroEq);
  SC_SPEC(3, ZeroNe);
  SC_SPEC(3, ZeroLt);
  SC_SPEC(3, ZeroGt);
  SC_SPEC(3, Fetch);
  SC_SPEC(3, CFetch);
  SC_SPEC(3, Store);
  SC_SPEC(3, CStore);
  SC_SPEC(3, PlusStore);
  SC_SPEC(3, ToR);
  SC_SPEC(3, RFrom);
  SC_SPEC(3, RFetch);
  SC_SPEC(3, LoopI);
  SC_SPEC(3, Over);
  SC_SPEC(3, Emit);
  SC_SPEC(3, Dot);
  SC_SPEC(3, TypeOp);
  SC_SPEC(3, DoSetup);
  SC_SPEC(3, QBranch);
  SC_SPEC(3, Branch);
  SC_SPEC(3, Call);
  SC_SPEC(3, Exit);
  SC_SPEC(3, LoopBr);
  SC_SPEC(3, PlusLoopBr);
  SC_SPEC(3, Halt);
  // Superinstruction copies (Section 2.2 composed with Section 5).
  SC_SPEC3(LitAdd);
  SC_SPEC3(LitSub);
  SC_SPEC3(LitLt);
  SC_SPEC3(LitEq);
  SC_SPEC3(LitFetch);
  SC_SPEC3(LitStore);
  SC_SPEC(3, LitAdd);
  SC_SPEC(3, LitSub);
  SC_SPEC(3, LitLt);
  SC_SPEC(3, LitEq);
  SC_SPEC(3, LitFetch);
  SC_SPEC(3, LitStore);
#undef SC_SPEC3
#undef SC_SPEC
  Labels[4 * NumOpcodes + MSpill0] = &&M_Spill0;
  Labels[4 * NumOpcodes + MSpill1] = &&M_Spill1;
  Labels[4 * NumOpcodes + MSpill0Under] = &&M_Spill0Under;
  Labels[4 * NumOpcodes + MSpill1Under] = &&M_Spill1Under;
  Labels[4 * NumOpcodes + MSpill0Dup] = &&M_Spill0Dup;
  Labels[4 * NumOpcodes + MSpill1Dup] = &&M_Spill1Dup;
  Labels[4 * NumOpcodes + MXchg] = &&M_Xchg;
  Labels[4 * NumOpcodes + MMove01] = &&M_Move01;
  Labels[4 * NumOpcodes + MMove10] = &&M_Move10;
  Labels[4 * NumOpcodes + MMove10Deep] = &&M_Move10Deep;
  Labels[4 * NumOpcodes + MFillTos] = &&M_FillTos;
  Labels[4 * NumOpcodes + MFillSnd0] = &&M_FillSnd0;
  Labels[4 * NumOpcodes + MFillSnd1] = &&M_FillSnd1;

  if (HandlersOut) {
    for (unsigned I = 0; I < NumHandlers; ++I)
      HandlersOut[I] = reinterpret_cast<Cell>(Labels[I]);
    return {RunStatus::Halted, 0};
  }

  const SpecProgram &SP = *SPP;
  ExecContext &Ctx = *CtxPtr;
  SC_ASSERT(Ctx.Prog && Ctx.Machine, "unbound ExecContext");
  SC_ASSERT(OrigEntry < SP.OrigToSpec.size(), "entry out of range");
  const UCell SpecSize = SP.Insts.size();
  const UCell OrigSize = Ctx.Prog->Insts.size();
  // Entry must be a canonical (state-0) block entry: word entries always
  // are, and resumed runs re-enter at StepLimit stops, which the engine
  // only takes at canonical entries (see DNEXT below).
  const uint32_t Entry = SP.OrigToSpec[OrigEntry];
  SC_ASSERT(Entry < SpecSize, "entry is not a canonical block entry");
  // Orig<->spec maps, needed on the control paths: calls push canonical
  // (original-index) return addresses and exits map them back.
  const uint32_t *S2O = SP.SpecToOrig.data();
  const uint32_t *O2S = SP.OrigToSpec.data();

  Vm &TheVm = *Ctx.Machine;
  const Cell *Base = Stream;
  const Cell *Ip = Base + 2 * Entry;
  const Cell *W = Ip;
  Cell *Stack = Ctx.DS.data();
  Cell *RStack = Ctx.RS.data();
  const unsigned DsCap = Ctx.DsCapacity;
  const unsigned RsCap = Ctx.RsCapacity;
  unsigned Dsp = Ctx.DsDepth;
  unsigned Rsp = Ctx.RsDepth;
  Cell R0 = 0, R1 = 0;
  // Cache shape at trap time, for write-back:
  // 0 = empty, 1 = [t:r0], 2 = [t:r1 r0], 3 = [t:r1], 4 = [t:r0 r0].
  unsigned ExitState = 0;
  uint64_t StepsLeft = Ctx.MaxSteps;
  uint64_t Steps = 0;
  RunStatus St = RunStatus::Halted;
  Cell FaultAddr = 0;
  bool HasFaultAddr = false;

  // Seed the sentinel return address unless this call resumes an
  // interrupted run (Ctx.Resume), which already carries it.
  if (!Ctx.Resume) {
    if (Rsp >= RsCap) {
      SC_IF_STATS(if (Ctx.Stats)
                    metrics::noteTrap(*Ctx.Stats, RunStatus::RStackOverflow));
      return makeFault(RunStatus::RStackOverflow, 0, OrigEntry,
                       Ctx.Prog->Insts[OrigEntry].Op, Dsp, Rsp);
    }
    RStack[Rsp++] = 0;
  }

  // Plain direct threading: the pass resolved the state statically, so
  // dispatch needs no table and no state variable.
  //
  // StepLimit stops are deferred to safe points — positions where the
  // cache state is 0 AND the next specialized instruction is a canonical
  // block entry — because those are the only positions a later run can
  // re-enter (specialized code cannot be entered mid-block). When the
  // budget runs out elsewhere, execution continues with StepsLeft pinned
  // at zero until the next safe point; Steps keeps counting, so the
  // overshoot is visible in the outcome. The overshoot is bounded by the
  // longest basic block: every loop contains a leader-targeting branch,
  // so a pinned run reaches a safe point in at most one block's worth of
  // instructions.
#define DNEXT(State)                                                           \
  {                                                                            \
    if (StepsLeft == 0) {                                                      \
      if ((State) == 0 &&                                                      \
          isCanonicalEntry(SP, static_cast<UCell>((Ip - Base) / 2))) {         \
        ExitState = 0;                                                         \
        St = RunStatus::StepLimit;                                             \
        goto Done;                                                             \
      }                                                                        \
    } else {                                                                   \
      --StepsLeft;                                                             \
    }                                                                          \
    ++Steps;                                                                   \
    W = Ip;                                                                    \
    Ip += 2;                                                                   \
    SC_IF_STATS(if (Ctx.Stats) noteStaticDispatch(                             \
                    *Ctx.Stats, SP, static_cast<UCell>((W - Base) / 2)));      \
    goto *reinterpret_cast<void *>(W[0]);                                      \
  }
#define TRAPS(State, Status)                                                   \
  {                                                                            \
    ExitState = (State);                                                       \
    St = RunStatus::Status;                                                    \
    goto Done;                                                                 \
  }
#define TRAPMEM(State, A)                                                      \
  {                                                                            \
    FaultAddr = (A);                                                           \
    HasFaultAddr = true;                                                       \
    TRAPS(State, BadMemAccess);                                                \
  }
#define NEEDMEM(State, N)                                                      \
  if (Dsp < static_cast<unsigned>(N))                                          \
  TRAPS(State, StackUnderflow)
#define ROOMK(State, CachedK, N)                                               \
  if (Dsp + (CachedK) + static_cast<unsigned>(N) > DsCap)                      \
  TRAPS(State, StackOverflow)
#define RNEEDK(State, N)                                                       \
  if (Rsp < static_cast<unsigned>(N))                                          \
  TRAPS(State, RStackUnderflow)
#define RROOMK(State, N)                                                       \
  if (Rsp + static_cast<unsigned>(N) > RsCap)                                  \
  TRAPS(State, RStackOverflow)
  // Static branch operands in the prepared stream are pre-scaled threaded
  // offsets (DJUMP); Exit's guest-supplied return address is still a
  // spec-index and rescales through DJUMPDYN.
#define DJUMP(State, T)                                                        \
  {                                                                            \
    Ip = Base + static_cast<UCell>(T);                                         \
    DNEXT(State);                                                              \
  }
#define DJUMPDYN(State, T)                                                     \
  {                                                                            \
    Ip = Base + 2 * static_cast<UCell>(T);                                     \
    DNEXT(State);                                                              \
  }

  DNEXT(0);

BadHandler:
  sc::unreachable("specialized handler missing for emitted combination");

  // --- Micro-instructions ----------------------------------------------------

M_Spill0:
  Stack[Dsp++] = R0;
  DNEXT(0);
M_Spill1:
  Stack[Dsp++] = R1;
  DNEXT(0);
M_Spill0Under:
  Stack[Dsp++] = R0;
  DNEXT(3); // TOS remains in R1
M_Spill1Under:
  Stack[Dsp++] = R1;
  DNEXT(1); // TOS remains in R0
M_Spill0Dup:
  Stack[Dsp++] = R0;
  DNEXT(1); // the duplicate stays in R0
M_Spill1Dup:
  Stack[Dsp++] = R1;
  DNEXT(3);
M_Xchg : {
  Cell T = R0;
  R0 = R1;
  R1 = T;
  DNEXT(2);
}
M_Move01:
  R1 = R0;
  DNEXT(2);
M_Move10:
  R0 = R1;
  DNEXT(1);
M_Move10Deep:
  R0 = R1;
  DNEXT(2);
M_FillTos:
  NEEDMEM(0, 1);
  R0 = Stack[--Dsp];
  DNEXT(1);
M_FillSnd0:
  NEEDMEM(3, 1);
  R0 = Stack[--Dsp];
  DNEXT(2);
M_FillSnd1:
  NEEDMEM(1, 1);
  R1 = Stack[--Dsp];
  DNEXT(2);

  // --- Specialized copies ---------------------------------------------------

S0_Lit:
  ROOMK(0, 0, 1);
  R0 = W[1];
  DNEXT(1);
S1_Lit:
  ROOMK(1, 1, 1);
  R1 = W[1];
  DNEXT(2);
S2_Lit:
  ROOMK(2, 2, 1);
  Stack[Dsp++] = R0;
  R0 = R1;
  R1 = W[1];
  DNEXT(2);

#define SC_SBIN(Name, EXPR)                                                    \
  S0_##Name: {                                                                 \
    NEEDMEM(0, 2);                                                             \
    Cell B = Stack[--Dsp];                                                     \
    Cell A = Stack[--Dsp];                                                     \
    (void)A;                                                                   \
    (void)B;                                                                   \
    R0 = (EXPR);                                                               \
    DNEXT(1);                                                                  \
  }                                                                            \
  S1_##Name: {                                                                 \
    NEEDMEM(1, 1);                                                             \
    Cell B = R0;                                                               \
    Cell A = Stack[--Dsp];                                                     \
    (void)A;                                                                   \
    (void)B;                                                                   \
    R0 = (EXPR);                                                               \
    DNEXT(1);                                                                  \
  }                                                                            \
  S2_##Name: {                                                                 \
    Cell B = R1;                                                               \
    Cell A = R0;                                                               \
    (void)A;                                                                   \
    (void)B;                                                                   \
    R0 = (EXPR);                                                               \
    DNEXT(1);                                                                  \
  }                                                                            \
  S3_##Name: {                                                                 \
    Cell B = R0;                                                               \
    Cell A = R0;                                                               \
    (void)A;                                                                   \
    (void)B;                                                                   \
    R0 = (EXPR);                                                               \
    DNEXT(1);                                                                  \
  }

  SC_SBIN(Add, arithAdd(A, B))
  SC_SBIN(Sub, arithSub(A, B))
  SC_SBIN(Mul, arithMul(A, B))
  SC_SBIN(And, A &B)
  SC_SBIN(Or, A | B)
  SC_SBIN(Xor, A ^ B)
  SC_SBIN(Lshift, arithLshift(A, B))
  SC_SBIN(Rshift, arithRshift(A, B))
  SC_SBIN(Min, A < B ? A : B)
  SC_SBIN(Max, A > B ? A : B)
  SC_SBIN(Eq, boolCell(A == B))
  SC_SBIN(Ne, boolCell(A != B))
  SC_SBIN(Lt, boolCell(A < B))
  SC_SBIN(Gt, boolCell(A > B))
  SC_SBIN(Le, boolCell(A <= B))
  SC_SBIN(Ge, boolCell(A >= B))
  SC_SBIN(ULt, arithULt(A, B))
#undef SC_SBIN

  // Division and modulo trap after consuming their operands, exactly like
  // the reference engine.
#define SC_SDIVMOD(Name, EXPR)                                                 \
  S0_##Name: {                                                                 \
    NEEDMEM(0, 2);                                                             \
    Cell B = Stack[--Dsp];                                                     \
    Cell A = Stack[--Dsp];                                                     \
    if (B == 0)                                                                \
      TRAPS(0, DivByZero);                                                     \
    R0 = (EXPR);                                                               \
    DNEXT(1);                                                                  \
  }                                                                            \
  S1_##Name: {                                                                 \
    NEEDMEM(1, 1);                                                             \
    Cell B = R0;                                                               \
    Cell A = Stack[--Dsp];                                                     \
    if (B == 0)                                                                \
      TRAPS(0, DivByZero);                                                     \
    R0 = (EXPR);                                                               \
    DNEXT(1);                                                                  \
  }                                                                            \
  S2_##Name: {                                                                 \
    Cell B = R1;                                                               \
    Cell A = R0;                                                               \
    if (B == 0)                                                                \
      TRAPS(0, DivByZero);                                                     \
    R0 = (EXPR);                                                               \
    DNEXT(1);                                                                  \
  }                                                                            \
  S3_##Name: {                                                                 \
    Cell B = R0;                                                               \
    Cell A = R0;                                                               \
    if (B == 0)                                                                \
      TRAPS(0, DivByZero);                                                     \
    R0 = (EXPR);                                                               \
    DNEXT(1);                                                                  \
  }

  SC_SDIVMOD(Div, arithDiv(A, B))
  SC_SDIVMOD(Mod, arithMod(A, B))
#undef SC_SDIVMOD

#define SC_SUN(Name, EXPR)                                                     \
  S0_##Name: {                                                                 \
    NEEDMEM(0, 1);                                                             \
    Cell A = Stack[--Dsp];                                                     \
    R0 = (EXPR);                                                               \
    DNEXT(1);                                                                  \
  }                                                                            \
  S1_##Name: {                                                                 \
    Cell A = R0;                                                               \
    R0 = (EXPR);                                                               \
    DNEXT(1);                                                                  \
  }                                                                            \
  S2_##Name: {                                                                 \
    Cell A = R1;                                                               \
    R1 = (EXPR);                                                               \
    DNEXT(2);                                                                  \
  }                                                                            \
  S3_##Name: {                                                                 \
    Cell A = R0;                                                               \
    R1 = (EXPR);                                                               \
    DNEXT(2);                                                                  \
  }

  SC_SUN(Negate, arithNegate(A))
  SC_SUN(Invert, ~A)
  SC_SUN(Abs, arithAbs(A))
  SC_SUN(OnePlus, arithOnePlus(A))
  SC_SUN(OneMinus, arithOneMinus(A))
  SC_SUN(TwoStar, arithTwoStar(A))
  SC_SUN(TwoSlash, A >> 1)
  SC_SUN(Cells, arithCells(A))
  SC_SUN(ZeroEq, boolCell(A == 0))
  SC_SUN(ZeroNe, boolCell(A != 0))
  SC_SUN(ZeroLt, boolCell(A < 0))
  SC_SUN(ZeroGt, boolCell(A > 0))
#undef SC_SUN

S0_Fetch : {
  NEEDMEM(0, 1);
  Cell Addr = Stack[--Dsp];
  if (!TheVm.validRange(Addr, CellBytes))
    TRAPMEM(0, Addr);
  R0 = TheVm.loadCell(Addr);
  DNEXT(1);
}
S1_Fetch:
  if (!TheVm.validRange(R0, CellBytes))
    TRAPMEM(0, R0);
  R0 = TheVm.loadCell(R0);
  DNEXT(1);
S2_Fetch:
  if (!TheVm.validRange(R1, CellBytes))
    TRAPMEM(1, R1);
  R1 = TheVm.loadCell(R1);
  DNEXT(2);

S0_CFetch : {
  NEEDMEM(0, 1);
  Cell Addr = Stack[--Dsp];
  if (!TheVm.validRange(Addr, 1))
    TRAPMEM(0, Addr);
  R0 = TheVm.loadByte(Addr);
  DNEXT(1);
}
S1_CFetch:
  if (!TheVm.validRange(R0, 1))
    TRAPMEM(0, R0);
  R0 = TheVm.loadByte(R0);
  DNEXT(1);
S2_CFetch:
  if (!TheVm.validRange(R1, 1))
    TRAPMEM(1, R1);
  R1 = TheVm.loadByte(R1);
  DNEXT(2);

S0_Store : {
  NEEDMEM(0, 2);
  Cell Addr = Stack[--Dsp];
  Cell V = Stack[--Dsp];
  if (!TheVm.validRange(Addr, CellBytes))
    TRAPMEM(0, Addr);
  TheVm.storeCell(Addr, V);
  DNEXT(0);
}
S1_Store : {
  NEEDMEM(1, 1);
  Cell V = Stack[--Dsp];
  if (!TheVm.validRange(R0, CellBytes))
    TRAPMEM(0, R0);
  TheVm.storeCell(R0, V);
  DNEXT(0);
}
S2_Store:
  if (!TheVm.validRange(R1, CellBytes))
    TRAPMEM(0, R1);
  TheVm.storeCell(R1, R0);
  DNEXT(0);

S0_CStore : {
  NEEDMEM(0, 2);
  Cell Addr = Stack[--Dsp];
  Cell V = Stack[--Dsp];
  if (!TheVm.validRange(Addr, 1))
    TRAPMEM(0, Addr);
  TheVm.storeByte(Addr, V);
  DNEXT(0);
}
S1_CStore : {
  NEEDMEM(1, 1);
  Cell V = Stack[--Dsp];
  if (!TheVm.validRange(R0, 1))
    TRAPMEM(0, R0);
  TheVm.storeByte(R0, V);
  DNEXT(0);
}
S2_CStore:
  if (!TheVm.validRange(R1, 1))
    TRAPMEM(0, R1);
  TheVm.storeByte(R1, R0);
  DNEXT(0);

S0_PlusStore : {
  NEEDMEM(0, 2);
  Cell Addr = Stack[--Dsp];
  Cell V = Stack[--Dsp];
  if (!TheVm.validRange(Addr, CellBytes))
    TRAPMEM(0, Addr);
  TheVm.storeCell(Addr, static_cast<Cell>(
                            static_cast<UCell>(TheVm.loadCell(Addr)) +
                            static_cast<UCell>(V)));
  DNEXT(0);
}
S1_PlusStore : {
  NEEDMEM(1, 1);
  Cell V = Stack[--Dsp];
  if (!TheVm.validRange(R0, CellBytes))
    TRAPMEM(0, R0);
  TheVm.storeCell(R0, static_cast<Cell>(
                          static_cast<UCell>(TheVm.loadCell(R0)) +
                          static_cast<UCell>(V)));
  DNEXT(0);
}
S2_PlusStore:
  if (!TheVm.validRange(R1, CellBytes))
    TRAPMEM(0, R1);
  TheVm.storeCell(R1, static_cast<Cell>(
                          static_cast<UCell>(TheVm.loadCell(R1)) +
                          static_cast<UCell>(R0)));
  DNEXT(0);

S0_ToR:
  NEEDMEM(0, 1);
  RROOMK(0, 1);
  RStack[Rsp++] = Stack[--Dsp];
  DNEXT(0);
S1_ToR:
  RROOMK(1, 1);
  RStack[Rsp++] = R0;
  DNEXT(0);
S2_ToR:
  RROOMK(2, 1);
  RStack[Rsp++] = R1;
  DNEXT(1);

S0_RFrom:
  RNEEDK(0, 1);
  ROOMK(0, 0, 1);
  R0 = RStack[--Rsp];
  DNEXT(1);
S1_RFrom:
  RNEEDK(1, 1);
  ROOMK(1, 1, 1);
  R1 = RStack[--Rsp];
  DNEXT(2);
S2_RFrom:
  RNEEDK(2, 1);
  ROOMK(2, 2, 1);
  Stack[Dsp++] = R0;
  R0 = R1;
  R1 = RStack[--Rsp];
  DNEXT(2);

S0_RFetch:
  RNEEDK(0, 1);
  ROOMK(0, 0, 1);
  R0 = RStack[Rsp - 1];
  DNEXT(1);
S1_RFetch:
  RNEEDK(1, 1);
  ROOMK(1, 1, 1);
  R1 = RStack[Rsp - 1];
  DNEXT(2);
S2_RFetch:
  RNEEDK(2, 1);
  ROOMK(2, 2, 1);
  Stack[Dsp++] = R0;
  R0 = R1;
  R1 = RStack[Rsp - 1];
  DNEXT(2);

S0_LoopI:
  RNEEDK(0, 1);
  ROOMK(0, 0, 1);
  R0 = RStack[Rsp - 1];
  DNEXT(1);
S1_LoopI:
  RNEEDK(1, 1);
  ROOMK(1, 1, 1);
  R1 = RStack[Rsp - 1];
  DNEXT(2);
S2_LoopI:
  RNEEDK(2, 1);
  ROOMK(2, 2, 1);
  Stack[Dsp++] = R0;
  R0 = R1;
  R1 = RStack[Rsp - 1];
  DNEXT(2);

S0_Over:
  NEEDMEM(0, 2);
  R0 = Stack[Dsp - 1];
  R1 = Stack[Dsp - 2];
  --Dsp;
  DNEXT(2);
S1_Over:
  NEEDMEM(1, 1);
  ROOMK(1, 1, 1);
  R1 = Stack[Dsp - 1];
  DNEXT(2);
S2_Over : {
  ROOMK(2, 2, 1);
  Cell T = R0;
  Stack[Dsp++] = T;
  R0 = R1;
  R1 = T;
  DNEXT(2);
}

S0_Emit:
  NEEDMEM(0, 1);
  TheVm.emitChar(Stack[--Dsp]);
  DNEXT(0);
S1_Emit:
  TheVm.emitChar(R0);
  DNEXT(0);
S2_Emit:
  TheVm.emitChar(R1);
  DNEXT(1);

S0_Dot:
  NEEDMEM(0, 1);
  TheVm.printNumber(Stack[--Dsp]);
  DNEXT(0);
S1_Dot:
  TheVm.printNumber(R0);
  DNEXT(0);
S2_Dot:
  TheVm.printNumber(R1);
  DNEXT(1);

S0_Cr:
  TheVm.emitChar('\n');
  DNEXT(0);
S1_Cr:
  TheVm.emitChar('\n');
  DNEXT(1);
S2_Cr:
  TheVm.emitChar('\n');
  DNEXT(2);

S0_Space:
  TheVm.emitChar(' ');
  DNEXT(0);
S1_Space:
  TheVm.emitChar(' ');
  DNEXT(1);
S2_Space:
  TheVm.emitChar(' ');
  DNEXT(2);

S0_TypeOp : {
  NEEDMEM(0, 2);
  Cell Len = Stack[--Dsp];
  Cell Addr = Stack[--Dsp];
  if (Len < 0 || !TheVm.validRange(Addr, Len))
    TRAPMEM(0, Addr);
  TheVm.typeRange(Addr, Len);
  DNEXT(0);
}
S1_TypeOp : {
  NEEDMEM(1, 1);
  Cell Len = R0;
  Cell Addr = Stack[--Dsp];
  if (Len < 0 || !TheVm.validRange(Addr, Len))
    TRAPMEM(0, Addr);
  TheVm.typeRange(Addr, Len);
  DNEXT(0);
}
S2_TypeOp : {
  Cell Len = R1;
  Cell Addr = R0;
  if (Len < 0 || !TheVm.validRange(Addr, Len))
    TRAPMEM(0, Addr);
  TheVm.typeRange(Addr, Len);
  DNEXT(0);
}

S0_DoSetup : {
  NEEDMEM(0, 2);
  RROOMK(0, 2);
  Cell Index = Stack[--Dsp];
  Cell Limit = Stack[--Dsp];
  RStack[Rsp++] = Limit;
  RStack[Rsp++] = Index;
  DNEXT(0);
}
S1_DoSetup:
  NEEDMEM(1, 1);
  RROOMK(1, 2);
  RStack[Rsp++] = Stack[--Dsp]; // limit (below the cached index)
  RStack[Rsp++] = R0;           // index
  DNEXT(0);
S2_DoSetup:
  RROOMK(2, 2);
  RStack[Rsp++] = R0; // limit
  RStack[Rsp++] = R1; // index
  DNEXT(0);

  // --- Control transfers: the cached-state copies reconcile to the
  // canonical (empty) state themselves.

S1_QBranch:
  if (R0 == 0)
    DJUMP(0, W[1]);
  DNEXT(0);
S2_QBranch:
  Stack[Dsp++] = R0; // the remaining item returns to memory
  if (R1 == 0)
    DJUMP(0, W[1]);
  DNEXT(0);

S1_Branch:
  Stack[Dsp++] = R0;
  DJUMP(0, W[1]);
S2_Branch:
  Stack[Dsp++] = R0;
  Stack[Dsp++] = R1;
  DJUMP(0, W[1]);

  // Calls push canonical return addresses — original instruction indices,
  // exactly what the stream engines push — so the return stack is fully
  // comparable across engines and survives a mid-run engine switch. The
  // instruction after a call is always a block leader (Code::computeLeaders),
  // so the orig index maps back through OrigToSpec on exit. A guest-forged
  // return address (>r then exit) naming a non-leader has no specialized
  // entry and traps BadMemAccess (see docs/TRAPS.md).

S1_Call:
  RROOMK(1, 1);
  Stack[Dsp++] = R0;
  RStack[Rsp++] = static_cast<Cell>(S2O[(W - Base) / 2] + 1);
  DJUMP(0, W[1]);
S2_Call:
  RROOMK(2, 1);
  Stack[Dsp++] = R0;
  Stack[Dsp++] = R1;
  RStack[Rsp++] = static_cast<Cell>(S2O[(W - Base) / 2] + 1);
  DJUMP(0, W[1]);

S1_Exit : {
  RNEEDK(1, 1);
  Stack[Dsp++] = R0;
  Cell Ret = RStack[--Rsp];
  if (static_cast<UCell>(Ret) >= OrigSize || O2S[Ret] == InvalidSpec)
    TRAPS(0, BadMemAccess);
  DJUMPDYN(0, O2S[Ret]);
}
S2_Exit : {
  RNEEDK(2, 1);
  Stack[Dsp++] = R0;
  Stack[Dsp++] = R1;
  Cell Ret = RStack[--Rsp];
  if (static_cast<UCell>(Ret) >= OrigSize || O2S[Ret] == InvalidSpec)
    TRAPS(0, BadMemAccess);
  DJUMPDYN(0, O2S[Ret]);
}

#define SC_SLOOPBR(PRE)                                                        \
  {                                                                            \
    PRE;                                                                       \
    Cell Index = RStack[Rsp - 1] + 1;                                          \
    if (Index != RStack[Rsp - 2]) {                                            \
      RStack[Rsp - 1] = Index;                                                 \
      DJUMP(0, W[1]);                                                          \
    }                                                                          \
    Rsp -= 2;                                                                  \
    DNEXT(0);                                                                  \
  }
S1_LoopBr:
  RNEEDK(1, 2);
  SC_SLOOPBR(Stack[Dsp++] = R0)
S2_LoopBr:
  RNEEDK(2, 2);
  SC_SLOOPBR(Stack[Dsp++] = R0; Stack[Dsp++] = R1)
#undef SC_SLOOPBR

#define SC_SPLUSLOOP(NEXPR, PRE)                                               \
  {                                                                            \
    Cell N = (NEXPR);                                                          \
    PRE;                                                                       \
    Cell Index = RStack[Rsp - 1];                                              \
    Cell Limit = RStack[Rsp - 2];                                              \
    __int128 D = static_cast<__int128>(Index) - Limit;                         \
    __int128 D2 = D + N;                                                       \
    bool Crossed = (D < 0 && D2 >= 0) || (D >= 0 && D2 < 0);                   \
    if (!Crossed) {                                                            \
      RStack[Rsp - 1] = static_cast<Cell>(static_cast<UCell>(Index) +          \
                                          static_cast<UCell>(N));              \
      DJUMP(0, W[1]);                                                          \
    }                                                                          \
    Rsp -= 2;                                                                  \
    DNEXT(0);                                                                  \
  }
S1_PlusLoopBr:
  RNEEDK(1, 2);
  SC_SPLUSLOOP(R0, (void)0)
S2_PlusLoopBr:
  RNEEDK(2, 2);
  SC_SPLUSLOOP(R1, Stack[Dsp++] = R0)
#undef SC_SPLUSLOOP

S1_Halt:
  TRAPS(1, Halted);
S2_Halt:
  TRAPS(2, Halted);


  // --- Duplication-state (ES3) copies: TOS and second item both in R0 ---

S3_Lit:
  ROOMK(4, 2, 1);
  Stack[Dsp++] = R0; // spill the deeper duplicate
  R1 = W[1];
  DNEXT(2);

S3_Fetch:
  if (!TheVm.validRange(R0, CellBytes))
    TRAPMEM(1, R0);
  R1 = TheVm.loadCell(R0);
  DNEXT(2);
S3_CFetch:
  if (!TheVm.validRange(R0, 1))
    TRAPMEM(1, R0);
  R1 = TheVm.loadByte(R0);
  DNEXT(2);

S3_Store:
  // ( x addr -- ) with x == addr == R0.
  if (!TheVm.validRange(R0, CellBytes))
    TRAPMEM(0, R0);
  TheVm.storeCell(R0, R0);
  DNEXT(0);
S3_CStore:
  if (!TheVm.validRange(R0, 1))
    TRAPMEM(0, R0);
  TheVm.storeByte(R0, R0);
  DNEXT(0);
S3_PlusStore:
  if (!TheVm.validRange(R0, CellBytes))
    TRAPMEM(0, R0);
  TheVm.storeCell(R0, static_cast<Cell>(
                          static_cast<UCell>(TheVm.loadCell(R0)) +
                          static_cast<UCell>(R0)));
  DNEXT(0);

S3_ToR:
  RROOMK(4, 1);
  RStack[Rsp++] = R0;
  DNEXT(1);
S3_RFrom:
  RNEEDK(4, 1);
  ROOMK(4, 2, 1);
  Stack[Dsp++] = R0;
  R1 = RStack[--Rsp];
  DNEXT(2);
S3_RFetch:
  RNEEDK(4, 1);
  ROOMK(4, 2, 1);
  Stack[Dsp++] = R0;
  R1 = RStack[Rsp - 1];
  DNEXT(2);
S3_LoopI:
  RNEEDK(4, 1);
  ROOMK(4, 2, 1);
  Stack[Dsp++] = R0;
  R1 = RStack[Rsp - 1];
  DNEXT(2);

S3_Over:
  // ( a b -- a b a ) with a == b == R0: spill one copy, TOS copy to R1.
  ROOMK(4, 2, 1);
  Stack[Dsp++] = R0;
  R1 = R0;
  DNEXT(2);

S3_Emit:
  TheVm.emitChar(R0);
  DNEXT(1);
S3_Dot:
  TheVm.printNumber(R0);
  DNEXT(1);
S3_TypeOp : {
  // ( addr u -- ) with addr == u == R0.
  if (R0 < 0 || !TheVm.validRange(R0, R0))
    TRAPMEM(0, R0);
  TheVm.typeRange(R0, R0);
  DNEXT(0);
}
S3_DoSetup:
  RROOMK(4, 2);
  RStack[Rsp++] = R0; // limit
  RStack[Rsp++] = R0; // index
  DNEXT(0);

S3_QBranch:
  Stack[Dsp++] = R0; // the surviving duplicate returns to memory
  if (R0 == 0)
    DJUMP(0, W[1]);
  DNEXT(0);
S3_Branch:
  Stack[Dsp++] = R0;
  Stack[Dsp++] = R0;
  DJUMP(0, W[1]);
S3_Call:
  RROOMK(4, 1);
  Stack[Dsp++] = R0;
  Stack[Dsp++] = R0;
  RStack[Rsp++] = static_cast<Cell>(S2O[(W - Base) / 2] + 1);
  DJUMP(0, W[1]);
S3_Exit : {
  RNEEDK(4, 1);
  Stack[Dsp++] = R0;
  Stack[Dsp++] = R0;
  Cell Ret = RStack[--Rsp];
  if (static_cast<UCell>(Ret) >= OrigSize || O2S[Ret] == InvalidSpec)
    TRAPS(0, BadMemAccess);
  DJUMPDYN(0, O2S[Ret]);
}
S3_LoopBr : {
  RNEEDK(4, 2);
  Stack[Dsp++] = R0;
  Stack[Dsp++] = R0;
  Cell Index = RStack[Rsp - 1] + 1;
  if (Index != RStack[Rsp - 2]) {
    RStack[Rsp - 1] = Index;
    DJUMP(0, W[1]);
  }
  Rsp -= 2;
  DNEXT(0);
}
S3_PlusLoopBr : {
  RNEEDK(4, 2);
  Cell N = R0;
  Stack[Dsp++] = R0;
  Cell Index = RStack[Rsp - 1];
  Cell Limit = RStack[Rsp - 2];
  __int128 D = static_cast<__int128>(Index) - Limit;
  __int128 D2 = D + N;
  bool Crossed = (D < 0 && D2 >= 0) || (D >= 0 && D2 < 0);
  if (!Crossed) {
    RStack[Rsp - 1] = static_cast<Cell>(static_cast<UCell>(Index) +
                                        static_cast<UCell>(N));
    DJUMP(0, W[1]);
  }
  Rsp -= 2;
  DNEXT(0);
}
S3_Halt:
  TRAPS(4, Halted);


  // --- Superinstruction copies: lit + consumer in one dispatch ---------------

#define SC_SLIT(Name, EXPR)                                                    \
  S0_##Name: {                                                                 \
    if (Dsp < 1) { /* materialize the literal, as unfused code would */       \
      R0 = W[1];                                                               \
      TRAPS(1, StackUnderflow);                                                \
    }                                                                          \
    Cell A = Stack[--Dsp];                                                     \
    Cell N = W[1];                                                             \
    (void)A;                                                                   \
    (void)N;                                                                   \
    R0 = (EXPR);                                                               \
    DNEXT(1);                                                                  \
  }                                                                            \
  S1_##Name: {                                                                 \
    Cell A = R0;                                                               \
    Cell N = W[1];                                                             \
    (void)A;                                                                   \
    (void)N;                                                                   \
    R0 = (EXPR);                                                               \
    DNEXT(1);                                                                  \
  }                                                                            \
  S2_##Name: {                                                                 \
    Cell A = R1;                                                               \
    Cell N = W[1];                                                             \
    (void)A;                                                                   \
    (void)N;                                                                   \
    R1 = (EXPR);                                                               \
    DNEXT(2);                                                                  \
  }                                                                            \
  S3_##Name: {                                                                 \
    Cell A = R0;                                                               \
    Cell N = W[1];                                                             \
    (void)A;                                                                   \
    (void)N;                                                                   \
    R1 = (EXPR);                                                               \
    DNEXT(2);                                                                  \
  }

  SC_SLIT(LitAdd, arithAdd(A, N))
  SC_SLIT(LitSub, arithSub(A, N))
  SC_SLIT(LitLt, boolCell(A < N))
  SC_SLIT(LitEq, boolCell(A == N))
#undef SC_SLIT

S0_LitFetch:
  ROOMK(0, 0, 1);
  if (!TheVm.validRange(W[1], CellBytes))
    TRAPMEM(0, W[1]);
  R0 = TheVm.loadCell(W[1]);
  DNEXT(1);
S1_LitFetch:
  ROOMK(1, 1, 1);
  if (!TheVm.validRange(W[1], CellBytes))
    TRAPMEM(1, W[1]);
  R1 = TheVm.loadCell(W[1]);
  DNEXT(2);
S2_LitFetch:
  ROOMK(2, 2, 1);
  if (!TheVm.validRange(W[1], CellBytes))
    TRAPMEM(2, W[1]);
  Stack[Dsp++] = R0;
  R0 = R1;
  R1 = TheVm.loadCell(W[1]);
  DNEXT(2);
S3_LitFetch:
  ROOMK(4, 2, 1);
  if (!TheVm.validRange(W[1], CellBytes))
    TRAPMEM(4, W[1]);
  Stack[Dsp++] = R0;
  R1 = TheVm.loadCell(W[1]);
  DNEXT(2);

S0_LitStore : {
  if (Dsp < 1) { // materialize the address, as unfused code would
    R0 = W[1];
    TRAPS(1, StackUnderflow);
  }
  Cell V = Stack[--Dsp];
  if (!TheVm.validRange(W[1], CellBytes))
    TRAPMEM(0, W[1]);
  TheVm.storeCell(W[1], V);
  DNEXT(0);
}
S1_LitStore:
  if (!TheVm.validRange(W[1], CellBytes))
    TRAPMEM(0, W[1]);
  TheVm.storeCell(W[1], R0);
  DNEXT(0);
S2_LitStore:
  if (!TheVm.validRange(W[1], CellBytes))
    TRAPMEM(1, W[1]);
  TheVm.storeCell(W[1], R1);
  DNEXT(1);
S3_LitStore:
  if (!TheVm.validRange(W[1], CellBytes))
    TRAPMEM(1, W[1]);
  TheVm.storeCell(W[1], R0);
  DNEXT(1);

  // --- Generic state-0 copies for every opcode -------------------------------

#define SC_CASE(Name) G_##Name:
#define SC_END DNEXT(0)
#define SC_OPERAND (W[1])
  // Calls push canonical (original-index) return addresses; Exit bounds-
  // checks against the original program and maps back through OrigToSpec,
  // trapping on addresses with no specialized entry (non-leaders).
#define SC_NEXTIP (S2O[(W - Base) / 2] + 1)
#define SC_JUMP(T) DJUMP(0, T)
#define SC_JUMP_DYN(T)                                                         \
  {                                                                            \
    const uint32_t SpecTarget = O2S[static_cast<UCell>(T)];                    \
    if (SpecTarget == InvalidSpec)                                             \
      TRAPS(0, BadMemAccess);                                                  \
    DJUMPDYN(0, SpecTarget);                                                   \
  }
#define SC_CODE_SIZE OrigSize
#define SC_TRAP(S) TRAPS(0, S)
#define SC_TRAP_MEM(A) TRAPMEM(0, A)
#define SC_HALT TRAPS(0, Halted)
#define SC_NEED(N) NEEDMEM(0, N)
#define SC_ROOM(N) ROOMK(0, 0, N)
#define SC_PUSH(X) Stack[Dsp++] = (X)
#define SC_POPV (Stack[--Dsp])
#define SC_RNEED(N) RNEEDK(0, N)
#define SC_RROOM(N) RROOMK(0, N)
#define SC_RPUSH(X) RStack[Rsp++] = (X)
#define SC_RPOPV (RStack[--Rsp])
#define SC_RPEEK(I) (RStack[Rsp - 1 - (I)])
#define SC_VMREF TheVm
#define SC_RTRAFFIC(S, L, M) ((void)0)

#include "dispatch/InstBodies.inc"

#undef SC_CASE
#undef SC_END
#undef SC_OPERAND
#undef SC_NEXTIP
#undef SC_JUMP
#undef SC_JUMP_DYN
#undef SC_CODE_SIZE
#undef SC_TRAP
#undef SC_TRAP_MEM
#undef SC_HALT
#undef SC_NEED
#undef SC_ROOM
#undef SC_PUSH
#undef SC_POPV
#undef SC_RNEED
#undef SC_RROOM
#undef SC_RPUSH
#undef SC_RPOPV
#undef SC_RPEEK
#undef SC_VMREF
#undef SC_RTRAFFIC

Done:
#undef DNEXT
#undef TRAPS
#undef TRAPMEM
#undef NEEDMEM
#undef ROOMK
#undef RNEEDK
#undef RROOMK
#undef DJUMP
#undef DJUMPDYN
  switch (ExitState) {
  case 0:
    break;
  case 1:
    Stack[Dsp++] = R0;
    break;
  case 2:
    Stack[Dsp++] = R0;
    Stack[Dsp++] = R1;
    break;
  case 3:
    Stack[Dsp++] = R1;
    break;
  case 4:
    Stack[Dsp++] = R0;
    Stack[Dsp++] = R0;
    break;
  default:
    sc::unreachable("bad trap exit state");
  }
  SC_IF_STATS(if (Ctx.Stats) {
    // Write-back stores: states 2 and 4 flush two items, 1 and 3 one.
    Ctx.Stats->ReconcileStores +=
        ExitState == 0 ? 0u : (ExitState == 2 || ExitState == 4 ? 2u : 1u);
    metrics::noteTrap(*Ctx.Stats, St);
  });
  Ctx.DsDepth = Dsp;
  Ctx.RsDepth = Rsp;
  Ctx.noteHighWater();
  if (St == RunStatus::Halted)
    return {St, Steps};
  // Map the specialized trap position back to the original program
  // counter so faults read like every other engine's. W addresses the
  // trapping specialized instruction; on StepLimit, Ip is the resume
  // point. Depths are post-write-back, matching the canonical contract.
  const UCell SpecPc =
      (St == RunStatus::StepLimit ? Ip - Base : W - Base) / 2;
  const uint32_t FaultPc = SpecPc < SP.SpecToOrig.size()
                               ? SP.SpecToOrig[SpecPc]
                               : static_cast<uint32_t>(SpecPc);
  return makeFault(St, Steps, FaultPc,
                   FaultPc < OrigSize ? Ctx.Prog->Insts[FaultPc].Op
                                      : Opcode::Halt,
                   Dsp, Rsp, FaultAddr, HasFaultAddr);
}

/// One-time cached copy of the handler label table.
const Cell *staticHandlerTable() {
  static Cell Tab[NumHandlers];
  static const bool Ready = [] {
    staticCore(nullptr, nullptr, 0, nullptr, Tab);
    return true;
  }();
  (void)Ready;
  return Tab;
}

} // namespace

void sc::staticcache::staticHandlerCells(Cell Out[NumHandlers]) {
  const Cell *Tab = staticHandlerTable();
  for (unsigned I = 0; I < NumHandlers; ++I)
    Out[I] = Tab[I];
}

void sc::staticcache::translateSpecStream(const SpecProgram &SP,
                                          const Cell *Handlers, Cell *Out) {
  const size_t N = SP.Insts.size();
  for (size_t I = 0; I < N; ++I) {
    const SpecInst &In = SP.Insts[I];
    SC_ASSERT(In.Handler < NumHandlers, "bad handler index");
    Out[2 * I] = Handlers[In.Handler];
    Out[2 * I + 1] =
        specIsBranchLike(In.Handler) ? In.Operand * 2 : In.Operand;
  }
  vm::noteStreamTranslation();
}

vm::RunOutcome sc::staticcache::runStaticPrepared(const SpecProgram &SP,
                                                  ExecContext &Ctx,
                                                  uint32_t OrigEntry,
                                                  const Cell *Stream) {
  return staticCore(&SP, &Ctx, OrigEntry, Stream, nullptr);
}

vm::RunOutcome sc::staticcache::runStaticEngine(const SpecProgram &SP,
                                                ExecContext &Ctx,
                                                uint32_t OrigEntry) {
  const UCell SpecSize = SP.Insts.size();
  if (Ctx.StreamScratch.size() < 2 * SpecSize)
    Ctx.StreamScratch.resize(2 * SpecSize);
  translateSpecStream(SP, staticHandlerTable(), Ctx.StreamScratch.data());
  return staticCore(&SP, &Ctx, OrigEntry, Ctx.StreamScratch.data(), nullptr);
}
