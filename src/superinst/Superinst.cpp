//===-- superinst/Superinst.cpp - Superinstruction combining --------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "superinst/Superinst.h"

#include "support/Assert.h"

using namespace sc;
using namespace sc::superinst;
using namespace sc::vm;

bool sc::superinst::isSuperinstruction(Opcode Op) {
  switch (Op) {
  case Opcode::LitAdd:
  case Opcode::LitSub:
  case Opcode::LitLt:
  case Opcode::LitEq:
  case Opcode::LitFetch:
  case Opcode::LitStore:
    return true;
  default:
    return false;
  }
}

/// The consumer half of a fusable pair, or Nop if not fusable.
static Opcode fusedOpcode(Opcode Consumer) {
  switch (Consumer) {
  case Opcode::Add:
    return Opcode::LitAdd;
  case Opcode::Sub:
    return Opcode::LitSub;
  case Opcode::Lt:
    return Opcode::LitLt;
  case Opcode::Eq:
    return Opcode::LitEq;
  case Opcode::Fetch:
    return Opcode::LitFetch;
  case Opcode::Store:
    return Opcode::LitStore;
  default:
    return Opcode::Nop;
  }
}

CombineResult
sc::superinst::combineSuperinstructions(const Code &Prog) {
  std::vector<bool> Leaders = Prog.computeLeaders();
  CombineResult R;
  Code &Out = R.Combined;
  Out.Insts.clear(); // drop the constructor's Halt; slot 0 is copied below

  std::vector<uint32_t> OldToNew(Prog.Insts.size(), 0);
  std::vector<std::pair<uint32_t, uint32_t>> Patches; // new idx, old target

  for (uint32_t I = 0; I < Prog.Insts.size(); ++I) {
    OldToNew[I] = static_cast<uint32_t>(Out.Insts.size());
    const Inst &In = Prog.Insts[I];
    if (In.Op == Opcode::Lit && I + 1 < Prog.Insts.size() &&
        !Leaders[I + 1]) {
      Opcode Fused = fusedOpcode(Prog.Insts[I + 1].Op);
      if (Fused != Opcode::Nop) {
        Out.Insts.push_back(Inst(Fused, In.Operand));
        OldToNew[I + 1] = OldToNew[I]; // nothing may target it anyway
        ++R.PairsCombined;
        ++I; // consume the pair
        continue;
      }
    }
    if (isBranchLike(In.Op))
      Patches.push_back({static_cast<uint32_t>(Out.Insts.size()),
                         static_cast<uint32_t>(In.Operand)});
    Out.Insts.push_back(In);
  }

  for (const auto &[NewIdx, OldTarget] : Patches)
    Out.Insts[NewIdx].Operand = OldToNew[OldTarget];

  for (const Word &W : Prog.Words) {
    Word NW = W;
    NW.Entry = OldToNew[W.Entry];
    NW.End = W.End < OldToNew.size()
                 ? OldToNew[W.End]
                 : static_cast<uint32_t>(Out.Insts.size());
    Out.Words.push_back(NW);
  }
  SC_ASSERT(Out.Insts.size() >= 1 && Out.Insts[0].Op == Opcode::Halt,
            "instruction 0 must remain the Halt slot");
  return R;
}
