//===-- superinst/Superinst.h - Superinstruction combining -----*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 2.2's other lever on interpreter performance: "Combining
/// often-used instruction sequences into one instruction is a popular
/// technique, as well as specializing an instruction for a frequent
/// constant argument (eliminating the argument fetch)". This pass does
/// both at once: adjacent `lit x` + consumer pairs become single
/// superinstructions carrying x as their operand (`lit+`, `lit-`,
/// `lit<`, `lit=`, `lit@`, `lit!`), chosen from the measured opcode mix
/// of the benchmark programs (bench/instruction_frequency). A pair is
/// only fused when no branch targets its second instruction.
///
/// The combined code runs on every engine in the project unchanged -
/// superinstructions are ordinary opcodes with static stack effects, so
/// the stack-caching machinery composes with them, which is exactly the
/// paper's point that semantic content and argument-access optimization
/// are independent axes.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPERINST_SUPERINST_H
#define SC_SUPERINST_SUPERINST_H

#include "vm/Code.h"

namespace sc::superinst {

/// Result of the combining pass.
struct CombineResult {
  vm::Code Combined;
  uint64_t PairsCombined = 0; ///< static pair sites fused
};

/// Returns \p Prog with every fusable `lit` + consumer pair replaced by
/// one superinstruction; branch targets and the word table are remapped.
CombineResult combineSuperinstructions(const vm::Code &Prog);

/// True if \p Op is one of the synthesized superinstructions.
bool isSuperinstruction(vm::Opcode Op);

} // namespace sc::superinst

#endif // SC_SUPERINST_SUPERINST_H
