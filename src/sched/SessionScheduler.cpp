//===-- sched/SessionScheduler.cpp - Multi-tenant session scheduler -------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "sched/SessionScheduler.h"

#include "dispatch/EngineRegistry.h"
#include "support/Assert.h"
#include "tier/TierController.h"
#include "vm/Code.h"

#include <algorithm>
#include <bit>
#include <cmath>

using namespace sc;
using namespace sc::sched;

const char *sc::sched::jobStateName(JobState S) {
  switch (S) {
  case JobState::Idle:
    return "idle";
  case JobState::Queued:
    return "queued";
  case JobState::Running:
    return "running";
  case JobState::Done:
    return "done";
  }
  sc::unreachable("bad job state");
}

void Job::cancel() {
  // The session checks the flag before the first slice of every
  // dispatch, so a queued job stops before executing any guest step.
  Sess->cancel();
}

//===----------------------------------------------------------------------===//
// Snapshot
//===----------------------------------------------------------------------===//

uint64_t SchedSnapshot::totalSteps() const {
  uint64_t N = 0;
  for (const TenantCounters &T : Tenants)
    N += T.Steps;
  return N;
}

uint64_t SchedSnapshot::totalDispatches() const {
  uint64_t N = 0;
  for (const TenantCounters &T : Tenants)
    N += T.Dispatches;
  return N;
}

double SchedSnapshot::latencyPercentileNs(double P) const {
  uint64_t Total = 0;
  for (uint64_t C : Latency)
    Total += C;
  if (Total == 0)
    return 0.0;
  // Rank of the sample holding the percentile, counted from 1. The
  // floating target `Acc >= P * Total` used here before had an edge at
  // the bottom: P == 0 (or small enough that the target rounded below
  // one sample) returned bucket 0's upper bound even when bucket 0 was
  // empty, because an accumulator of zero already satisfied `0 >= 0`.
  // Clamping the rank into [1, Total] lands every P on a bucket that
  // actually holds a sample, and keeps P == 1 from walking past the end.
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(P * static_cast<double>(Total)));
  Rank = std::clamp<uint64_t>(Rank, 1, Total);
  uint64_t Acc = 0;
  for (unsigned I = 0; I < LatencyBuckets; ++I) {
    Acc += Latency[I];
    if (Acc >= Rank)
      return std::ldexp(1.0, static_cast<int>(I) + 1);
  }
  // Unreachable (Rank <= Total and the buckets sum to Total), but keep
  // the top bucket's open-ended bound as a defensive answer.
  return std::ldexp(1.0, LatencyBuckets);
}

metrics::Json sc::sched::snapshotToJson(const SchedSnapshot &S) {
  metrics::Json O = metrics::Json::object();
  O.set("workers", metrics::Json::number(static_cast<uint64_t>(S.Workers)));
  O.set("busy_workers", metrics::Json::number(S.BusyWorkers));
  O.set("total_steps", metrics::Json::number(S.totalSteps()));
  O.set("total_dispatches", metrics::Json::number(S.totalDispatches()));
  O.set("p50_dispatch_ns", metrics::Json::number(S.latencyPercentileNs(0.5)));
  O.set("p99_dispatch_ns", metrics::Json::number(S.latencyPercentileNs(0.99)));
  metrics::Json Ts = metrics::Json::array();
  for (const TenantCounters &T : S.Tenants) {
    metrics::Json J = metrics::Json::object();
    J.set("name", metrics::Json::string(T.Name));
    J.set("submitted", metrics::Json::number(T.Submitted));
    J.set("rejected", metrics::Json::number(T.Rejected));
    J.set("dispatches", metrics::Json::number(T.Dispatches));
    J.set("slices", metrics::Json::number(T.Slices));
    J.set("steps", metrics::Json::number(T.Steps));
    J.set("preemptions", metrics::Json::number(T.Preemptions));
    J.set("completed", metrics::Json::number(T.Completed));
    J.set("faults", metrics::Json::number(T.Faults));
    J.set("deadline_hits", metrics::Json::number(T.DeadlineHits));
    J.set("cancellations", metrics::Json::number(T.Cancellations));
    J.set("crashes", metrics::Json::number(T.Crashes));
    J.set("recoveries", metrics::Json::number(T.Recoveries));
    J.set("tier_promotions", metrics::Json::number(T.TierPromotions));
    J.set("tier_demotions", metrics::Json::number(T.TierDemotions));
    J.set("queue_depth", metrics::Json::number(T.QueueDepth));
    Ts.push(std::move(J));
  }
  O.set("tenants", std::move(Ts));
  return O;
}

//===----------------------------------------------------------------------===//
// Construction / teardown
//===----------------------------------------------------------------------===//

SessionScheduler::SessionScheduler(SchedConfig Config) : Cfg(Config) {
  SC_ASSERT(Cfg.Workers > 0, "a scheduler needs at least one worker");
  SC_ASSERT(Cfg.SliceSteps > 0, "slices must make progress");
  SC_ASSERT(Cfg.FifoDispatchSlices > 0, "a dispatch must run at least one slice");
  SC_ASSERT((!Cfg.CrashEveryDispatches && !Cfg.CrashOneIn) ||
                Cfg.CheckpointEverySlices > 0,
            "crash injection needs checkpoints to recover from");
  if (!Cfg.Cache)
    Cfg.Cache = &prepare::globalPrepareCache();
  SC_ASSERT(!Cfg.Tier || Cfg.Tier->policy().Background,
            "a scheduler's tier controller must re-prepare in the "
            "background, never on the dispatch path");
  CrashRng = Rng(Cfg.CrashSeed ? Cfg.CrashSeed : 1);
  Pool.reserve(Cfg.Workers);
  for (unsigned I = 0; I < Cfg.Workers; ++I)
    Pool.emplace_back([this] { workerLoop(); });
}

SessionScheduler::~SessionScheduler() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    AdmissionOpen = false;
    // Cancel whatever is still admitted so the shutdown drain terminates
    // even for guests that would never stop on their own.
    for (const std::unique_ptr<Job> &J : Jobs) {
      const JobState S = J->state();
      if (S == JobState::Queued || S == JobState::Running)
        J->cancel();
    }
  }
  shutdown();
}

TenantId SessionScheduler::addTenant(std::string Name, TenantConfig Config) {
  // QueueCapacity == 0 is a legal degenerate: an admit-nothing tenant
  // whose every submit is Rejected (see TenantConfig). The ring below
  // still reserves worker headroom so requeues of in-flight jobs —
  // impossible for such a tenant, but harmless — could never overflow.
  SC_ASSERT(Config.QuantumSteps > 0, "a DRR quantum must credit something");
  std::lock_guard<std::mutex> Lock(Mu);
  SC_ASSERT(!Stopping, "addTenant after shutdown");
  Tenants.emplace_back();
  TenantState &TS = Tenants.back();
  TS.Name = std::move(Name);
  TS.Cfg = Config;
  // QueueCapacity bounds *waiting* jobs at admission; each worker can
  // additionally hold one in-flight job it may requeue on preemption, so
  // the ring needs that much headroom to never overflow.
  TS.Queue.reserve(Config.QueueCapacity + Cfg.Workers);
  Stats.emplace_back();
  // Re-reserve the run ring for the new tenant count, preserving order.
  Ring<uint32_t> Grown;
  Grown.reserve(Tenants.size());
  while (!RunRing.empty())
    Grown.pushBack(RunRing.popFront());
  RunRing = std::move(Grown);
  return static_cast<TenantId>(Tenants.size() - 1);
}

Job *SessionScheduler::createJob(TenantId T, const vm::Code &Prog,
                                 engine::EngineId E, const vm::Vm &ProtoMachine,
                                 JobSpec Spec) {
  // Shared cache: the first job for (Prog, E) prepares, every later one
  // (any tenant, any thread) reuses the translation. Under adaptive
  // tiering the controller picks the engine instead — the tier the
  // program has earned so far, never fused (Spec.Entry and every resume
  // PC are unfused instruction indices).
  std::unique_ptr<Job> J(new Job());
  std::shared_ptr<const prepare::PreparedCode> PC;
  if (Cfg.Tier) {
    PC = Cfg.Tier->acquire(Prog, &J->TierIdx, /*AllowFused=*/false);
    J->Prog = &Prog;
  } else {
    PC = Cfg.Cache->getOrPrepare(Prog, E);
  }
  J->Tenant = T;
  J->Spec = Spec;
  J->Machine = std::make_unique<vm::Vm>(ProtoMachine);
  session::SessionPolicy Pol;
  Pol.SliceSteps = Cfg.SliceSteps;
  Pol.FuelSteps = Spec.FuelSteps;
  Pol.ConfirmFaults = Spec.ConfirmFaults;
  Pol.CheckpointEverySlices = Cfg.CheckpointEverySlices;
  // Pol.Deadline stays zero: the scheduler enforces deadlines between
  // bounded dispatches so the session never reads a wall clock.
  J->Sess = std::make_unique<session::VmSession>(std::move(PC), *J->Machine,
                                                 Pol);
  J->NextEntry = Spec.Entry;
  Job *Raw = J.get();
  std::lock_guard<std::mutex> Lock(Mu);
  SC_ASSERT(T < Tenants.size(), "createJob for an unknown tenant");
  Jobs.push_back(std::move(J));
  return Raw;
}

//===----------------------------------------------------------------------===//
// Admission
//===----------------------------------------------------------------------===//

SubmitResult SessionScheduler::submit(Job *J) {
  SC_ASSERT(J->state() == JobState::Idle, "submit of a non-idle job");
  std::unique_lock<std::mutex> Lock(Mu);
  TenantState &TS = Tenants[J->Tenant];
  TenantStats &St = Stats[J->Tenant];
  for (;;) {
    if (!AdmissionOpen || Stopping)
      return SubmitResult::Closed;
    if (TS.Queue.size() < TS.Cfg.QueueCapacity)
      break;
    // A zero-capacity tenant rejects under Backpressure::Wait too:
    // space can never free up, so waiting would deadlock the submitter.
    if (TS.Cfg.OnFull == Backpressure::Reject || TS.Cfg.QueueCapacity == 0) {
      St.Rejected.fetch_add(1, std::memory_order_relaxed);
      return SubmitResult::Rejected;
    }
    AdmitCv.wait(Lock);
  }
  J->Seq = NextSeq++;
  J->DeadlineAt = J->Spec.Deadline.count() > 0
                      ? std::chrono::steady_clock::now() + J->Spec.Deadline
                      : std::chrono::steady_clock::time_point{};
  J->State.store(JobState::Queued, std::memory_order_release);
  TS.Queue.pushBack(J);
  St.Submitted.fetch_add(1, std::memory_order_relaxed);
  St.QueueDepth.fetch_add(1, std::memory_order_relaxed);
  ++Pending;
  if (!TS.InRunRing) {
    RunRing.pushBack(J->Tenant);
    TS.InRunRing = true;
  }
  WorkCv.notify_one();
  return SubmitResult::Admitted;
}

void SessionScheduler::rearm(Job *J) {
  SC_ASSERT(J->state() == JobState::Done, "rearm of a job that is not done");
  J->Sess->reset();
  J->Sess->resetCancel();
  J->Aggregate = session::SessionResult{};
  J->NextEntry = J->Spec.Entry;
  if (Cfg.Tier && J->Prog) {
    // Fresh-entry adoption: a rearmed job restarts at Spec.Entry, so any
    // tier its program earned while it was parked can be taken now.
    unsigned NewTier;
    if (auto Hot = Cfg.Tier->pollMigration(J->Sess->prepared().SourceIdentity,
                                           J->TierIdx, &NewTier)) {
      J->Sess->migrateTo(std::move(Hot));
      J->TierIdx = NewTier;
    }
  }
  J->State.store(JobState::Idle, std::memory_order_release);
}

void SessionScheduler::recycle(Job *J, const vm::Vm &ProtoMachine,
                               JobSpec Spec) {
  const JobState S = J->state();
  SC_ASSERT(S == JobState::Done || S == JobState::Idle,
            "recycle of a live job");
  SC_ASSERT(!Cfg.Tier, "recycle is not tier-aware; use rearm");
  // The session stays bound to its prepared program, so a recycled job
  // serves the same (program, engine) pair — the service's free lists
  // key on exactly that. Machine state is replaced wholesale: data
  // space, accessibility limit, and accumulated output all become the
  // proto's, and the fuel budget belongs to the new job alone.
  *J->Machine = ProtoMachine;
  J->Sess->reset();
  J->Sess->resetCancel();
  J->Sess->resetFuel(Spec.FuelSteps);
  J->Spec = Spec;
  J->Aggregate = session::SessionResult{};
  J->NextEntry = Spec.Entry;
  J->State.store(JobState::Idle, std::memory_order_release);
}

snapshot::SnapshotError SessionScheduler::adoptCheckpoint(Job *J,
                                                          const uint8_t *Data,
                                                          size_t N) {
  SC_ASSERT(J->state() == JobState::Idle,
            "adoptCheckpoint into a non-idle job");
  snapshot::MachineState MS;
  const snapshot::SnapshotError E = J->Sess->restoreFrom(Data, N, &MS);
  if (E != snapshot::SnapshotError::None)
    return E;
  // Same accounting as recover(): the job resumes at the snapshot's PC
  // and reports the snapshot's retired progress, so work re-executed
  // after a shard rebuild is reported exactly once.
  J->NextEntry = MS.Pc;
  J->Aggregate = session::SessionResult{};
  J->Aggregate.Outcome.Steps = MS.StepsRetired;
  J->Aggregate.Slices = MS.SlicesRetired;
  if (Cfg.Tier && MS.HeatSteps) {
    // The v2 sidecar carries the heat the program had earned wherever
    // the snapshot was taken. Credit only the shortfall: a re-adoption
    // on the same controller (or a controller that already knows this
    // identity) must not double-count.
    const uint64_t Identity = J->Sess->prepared().SourceIdentity;
    const uint64_t Known = Cfg.Tier->heatSteps(Identity);
    if (MS.HeatSteps > Known)
      Cfg.Tier->seedSteps(Identity, MS.HeatSteps - Known);
    // Take the earned tier right now if its translation is ready; the
    // job is idle, so any rung (up to the migratable cap) is enterable.
    unsigned NewTier;
    if (auto Hot = Cfg.Tier->pollMigration(Identity, J->TierIdx, &NewTier)) {
      J->Sess->migrateTo(std::move(Hot));
      J->TierIdx = NewTier;
    }
  }
  return snapshot::SnapshotError::None;
}

void SessionScheduler::wait(Job *J) {
  std::unique_lock<std::mutex> Lock(Mu);
  DoneCv.wait(Lock, [&] { return J->state() == JobState::Done; });
}

void SessionScheduler::drain() {
  std::unique_lock<std::mutex> Lock(Mu);
  AdmissionOpen = false;
  AdmitCv.notify_all();
  DoneCv.wait(Lock, [&] { return Pending == 0; });
}

void SessionScheduler::reopen() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Stopping)
    AdmissionOpen = true;
  AdmitCv.notify_all();
}

void SessionScheduler::shutdown() {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    AdmissionOpen = false;
    AdmitCv.notify_all();
    DoneCv.wait(Lock, [&] { return Pending == 0; });
    Stopping = true;
    WorkCv.notify_all();
  }
  for (std::thread &T : Pool)
    if (T.joinable())
      T.join();
  std::lock_guard<std::mutex> Lock(Mu);
  Stopped = true;
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

bool SessionScheduler::selectTenant(size_t &OutIdx) {
  if (RunRing.empty())
    return false;
  size_t Pos = 0;
  if (Cfg.Policy == SchedPolicy::Fifo) {
    // Global submission order: serve the tenant whose head job was
    // admitted first. Ring members always have a non-empty queue.
    uint64_t Best = UINT64_MAX;
    for (size_t I = 0; I < RunRing.size(); ++I) {
      TenantState &TS = Tenants[RunRing.at(I)];
      const uint64_t Seq = TS.Queue.at(0)->Seq;
      if (Seq < Best) {
        Best = Seq;
        Pos = I;
      }
    }
  }
  std::swap(RunRing.at(0), RunRing.at(Pos));
  OutIdx = RunRing.popFront();
  Tenants[OutIdx].InRunRing = false;
  return true;
}

session::SessionResult SessionScheduler::dispatch(Job *J, uint64_t MaxSlices) {
  const engine::EngineCaps Caps =
      engine::engineInfo(J->Sess->prepared().Engine).Caps;
  if (!Caps.Reentrant) {
    // Call-threaded code keeps its VM registers in static storage; the
    // resume contract makes them canonical again at every slice
    // boundary, so serializing whole dispatches is sufficient.
    std::lock_guard<std::mutex> Lock(NonReentrantMu);
    return J->Sess->run(J->NextEntry, MaxSlices);
  }
  return J->Sess->run(J->NextEntry, MaxSlices);
}

void SessionScheduler::settle(Job *J, TenantState &TS, TenantStats &St,
                              const session::SessionResult &R) {
  // Fold into the aggregate: steps and slices accumulate, the final
  // stop's fields win (so a Halted aggregate is field-for-field what one
  // unbounded VmSession::run would have returned).
  const uint64_t Steps = J->Aggregate.Outcome.Steps + R.Outcome.Steps;
  const uint64_t Slices = J->Aggregate.Slices + R.Slices;
  J->Aggregate = R;
  J->Aggregate.Outcome.Steps = Steps;
  J->Aggregate.Slices = Slices;

  if (R.Stop == session::StopKind::Preempted) {
    St.Preemptions.fetch_add(1, std::memory_order_relaxed);
    J->NextEntry = R.ResumePc;
    if (Cfg.Tier) {
      // A preemption is a slice boundary with canonical resumable state:
      // the one place a live job may change engines. Poll-only — a null
      // result means the hotter translation is not ready yet, and the
      // job just keeps running its current tier.
      unsigned NewTier;
      if (auto Hot = Cfg.Tier->pollMigration(J->Sess->prepared().SourceIdentity,
                                             J->TierIdx, &NewTier)) {
        J->Sess->migrateTo(std::move(Hot));
        J->TierIdx = NewTier;
        St.TierPromotions.fetch_add(1, std::memory_order_relaxed);
      }
    }
    J->State.store(JobState::Queued, std::memory_order_release);
    if (Cfg.Policy == SchedPolicy::Fifo)
      TS.Queue.pushFront(J); // resumes at the head: run to completion
    else
      TS.Queue.pushBack(J); // yields the tenant queue to its siblings
    St.QueueDepth.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  finish(J, St, R.Stop);
}

void SessionScheduler::finish(Job *J, TenantStats &St, session::StopKind Stop) {
  St.Completed.fetch_add(1, std::memory_order_relaxed);
  switch (Stop) {
  case session::StopKind::Fault:
    St.Faults.fetch_add(1, std::memory_order_relaxed);
    break;
  case session::StopKind::DeadlineExpired:
    St.DeadlineHits.fetch_add(1, std::memory_order_relaxed);
    break;
  case session::StopKind::Cancelled:
    St.Cancellations.fetch_add(1, std::memory_order_relaxed);
    break;
  default:
    break;
  }
  J->State.store(JobState::Done, std::memory_order_release);
  SC_ASSERT(Pending > 0, "finishing a job that was never pending");
  --Pending;
  DoneCv.notify_all();
}

void SessionScheduler::recover(Job *J, TenantState &TS, TenantStats &St) {
  St.Recoveries.fetch_add(1, std::memory_order_relaxed);
  const std::vector<uint8_t> &Ckpt = J->Sess->lastCheckpoint();
  if (!Ckpt.empty()) {
    // Roll the session — stacks, data space, output, fuel — and the
    // job's reported aggregate back to the durable point. Re-executed
    // slices are thereby reported exactly once: a recovered job's final
    // result is field-for-field the uncrashed result.
    snapshot::MachineState MS;
    const snapshot::SnapshotError E = J->Sess->restoreFrom(Ckpt, &MS);
    SC_ASSERT(E == snapshot::SnapshotError::None,
              "a checkpoint this scheduler wrote failed to restore");
    J->NextEntry = MS.Pc;
    J->Aggregate.Outcome.Steps = MS.StepsRetired;
    J->Aggregate.Slices = MS.SlicesRetired;
  }
  // else: the doomed dispatch died before its session ever reached a
  // slice boundary (e.g. a quarantine rejection) — nothing executed,
  // nothing to roll back; the job just goes around again.
  J->State.store(JobState::Queued, std::memory_order_release);
  if (Cfg.Policy == SchedPolicy::Fifo)
    TS.Queue.pushFront(J);
  else
    TS.Queue.pushBack(J);
  St.QueueDepth.fetch_add(1, std::memory_order_relaxed);
}

void SessionScheduler::noteLatency(uint64_t Ns) {
  unsigned B = Ns == 0 ? 0 : static_cast<unsigned>(std::bit_width(Ns)) - 1;
  if (B >= LatencyBuckets)
    B = LatencyBuckets - 1;
  Latency[B].fetch_add(1, std::memory_order_relaxed);
}

void SessionScheduler::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    WorkCv.wait(Lock, [&] { return Stopping || !RunRing.empty(); });
    if (Stopping)
      return; // shutdown drained first, so the ring is empty
    size_t TIdx;
    if (!selectTenant(TIdx))
      continue;
    TenantState &TS = Tenants[TIdx];
    TenantStats &St = Stats[TIdx];
    Job *J = TS.Queue.popFront();
    St.QueueDepth.fetch_sub(1, std::memory_order_relaxed);
    AdmitCv.notify_all(); // a waiting-queue slot freed

    // Scheduler-level deadline, checked before any guest step of this
    // dispatch. The synthesized result mirrors the session's resumable
    // deadline stop (the aggregate keeps the steps already executed).
    if (J->DeadlineAt != std::chrono::steady_clock::time_point{} &&
        std::chrono::steady_clock::now() >= J->DeadlineAt) {
      session::SessionResult R;
      R.Stop = session::StopKind::DeadlineExpired;
      R.Resumable = true;
      R.ResumePc = J->NextEntry;
      R.Outcome.Status = vm::RunStatus::StepLimit;
      R.Outcome.Fault.Pc = J->NextEntry;
      settle(J, TS, St, R);
      if (!TS.Queue.empty() && !TS.InRunRing) {
        RunRing.pushBack(static_cast<uint32_t>(TIdx));
        TS.InRunRing = true;
        WorkCv.notify_one();
      }
      continue;
    }

    uint64_t MaxSlices;
    if (Cfg.Policy == SchedPolicy::Drr) {
      // Deficit round-robin over guest steps: credit a quantum when the
      // deficit cannot cover one slice, spend it in whole slices.
      if (TS.Deficit < Cfg.SliceSteps)
        TS.Deficit += TS.Cfg.QuantumSteps;
      MaxSlices = std::max<uint64_t>(1, TS.Deficit / Cfg.SliceSteps);
    } else {
      MaxSlices = Cfg.FifoDispatchSlices;
    }

    // Fault injection decides the worker's fate before it runs, under
    // the lock, so the doomed-dispatch sequence is a deterministic
    // function of the dispatch order (and with Fifo + one worker, of
    // the submission order alone).
    bool Doomed = false;
    if (Cfg.CrashEveryDispatches)
      Doomed = ++CrashClock % Cfg.CrashEveryDispatches == 0;
    else if (Cfg.CrashOneIn)
      Doomed = CrashRng.below(Cfg.CrashOneIn) == 0;

    J->State.store(JobState::Running, std::memory_order_release);
    BusyWorkers.fetch_add(1, std::memory_order_relaxed);
    Lock.unlock();

    const auto T0 = std::chrono::steady_clock::now();
    const session::SessionResult R = dispatch(J, MaxSlices);
    const auto T1 = std::chrono::steady_clock::now();
    noteLatency(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
            .count()));
    BusyWorkers.fetch_sub(1, std::memory_order_relaxed);

    Lock.lock();
    // The dispatch physically happened even when the worker then "dies":
    // executed steps burned CPU, so traffic counters and the DRR debit
    // are charged either way. Only the *effect on the job* is lost.
    St.Dispatches.fetch_add(1, std::memory_order_relaxed);
    St.Slices.fetch_add(R.Slices, std::memory_order_relaxed);
    St.Steps.fetch_add(R.Outcome.Steps, std::memory_order_relaxed);
    if (Cfg.Policy == SchedPolicy::Drr)
      TS.Deficit -= std::min(TS.Deficit, R.Outcome.Steps);
    if (Cfg.Tier && J->Prog) {
      // Hotness reporting: cheap map update; any re-preparation it
      // triggers runs on the controller's background worker.
      Cfg.Tier->recordSteps(*J->Prog, J->TierIdx, R.Outcome.Steps);
      // Stamp the session's tier sidecar so the next checkpoint carries
      // the earned heat and rung — a migrating adopter seeds from them.
      J->Sess->noteTierState(
          Cfg.Tier->heatSteps(J->Sess->prepared().SourceIdentity), J->TierIdx);
      if (R.Stop == session::StopKind::Fault && R.Replayed &&
          R.Verdict == session::Confirmation::Confirmed && J->TierIdx > 0) {
        // A confirmed fault on a promoted tier: pin the program cold so
        // tiering stops churning it (quarantine handles repeat
        // offenders process-wide).
        Cfg.Tier->demote(J->Sess->prepared().SourceIdentity);
        St.TierDemotions.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (Doomed) {
      // The worker dies at the slice boundary that ended this dispatch:
      // R is never settled, as if the crash had taken it.
      St.Crashes.fetch_add(1, std::memory_order_relaxed);
      recover(J, TS, St);
    } else {
      settle(J, TS, St, R);
    }
    if (!TS.Queue.empty() && !TS.InRunRing) {
      RunRing.pushBack(static_cast<uint32_t>(TIdx));
      TS.InRunRing = true;
      WorkCv.notify_one();
    }
  }
}

SchedSnapshot SessionScheduler::snapshot() const {
  SchedSnapshot S;
  S.Workers = Cfg.Workers;
  S.BusyWorkers = BusyWorkers.load(std::memory_order_relaxed);
  for (unsigned I = 0; I < LatencyBuckets; ++I)
    S.Latency[I] = Latency[I].load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(Mu);
  S.Tenants.reserve(Tenants.size());
  for (size_t I = 0; I < Tenants.size(); ++I) {
    const TenantStats &St = Stats[I];
    TenantCounters C;
    C.Name = Tenants[I].Name;
    C.Submitted = St.Submitted.load(std::memory_order_relaxed);
    C.Rejected = St.Rejected.load(std::memory_order_relaxed);
    C.Dispatches = St.Dispatches.load(std::memory_order_relaxed);
    C.Slices = St.Slices.load(std::memory_order_relaxed);
    C.Steps = St.Steps.load(std::memory_order_relaxed);
    C.Preemptions = St.Preemptions.load(std::memory_order_relaxed);
    C.Completed = St.Completed.load(std::memory_order_relaxed);
    C.Faults = St.Faults.load(std::memory_order_relaxed);
    C.DeadlineHits = St.DeadlineHits.load(std::memory_order_relaxed);
    C.Cancellations = St.Cancellations.load(std::memory_order_relaxed);
    C.Crashes = St.Crashes.load(std::memory_order_relaxed);
    C.Recoveries = St.Recoveries.load(std::memory_order_relaxed);
    C.TierPromotions = St.TierPromotions.load(std::memory_order_relaxed);
    C.TierDemotions = St.TierDemotions.load(std::memory_order_relaxed);
    C.QueueDepth = St.QueueDepth.load(std::memory_order_relaxed);
    S.Tenants.push_back(std::move(C));
  }
  return S;
}
