//===-- sched/SessionScheduler.h - Multi-tenant session scheduler -* C++ *-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A multi-tenant scheduler over supervised VmSessions. N tenants submit
/// jobs (a prepared program + a machine + a supervision spec); a fixed
/// pool of worker threads executes them in bounded dispatches of
/// VmSession::run(Entry, MaxSlices), so every scheduling decision
/// happens at a slice boundary where the guest state is canonical and
/// resumable. The engine hot loops are untouched; preempting a job is
/// nothing more than returning from a bounded dispatch and requeueing.
///
/// Scheduling policy (SchedConfig::Policy):
///
///   - Drr: deficit round-robin over guest-step budgets. Each tenant
///     holds a step deficit; selection credits QuantumSteps when the
///     deficit cannot cover one slice, the dispatch budget is
///     Deficit / SliceSteps slices, and the steps actually executed are
///     debited afterwards. Tenants with expensive programs therefore get
///     the same cumulative guest-step share as tenants with cheap ones.
///   - Fifo: global submission order, one job at a time to completion
///     (dispatches stay bounded so deadlines and cancellation are still
///     honored; a preempted job resumes at the head of its tenant's
///     queue). With one worker this reproduces sequential execution
///     field for field — the determinism tests pin that down.
///
/// Admission control is per tenant and bounded: QueueCapacity jobs may
/// wait per tenant, and a full queue either rejects the submit
/// (Backpressure::Reject) or blocks the submitting thread until space
/// frees up (Backpressure::Wait). Drain closes admission and waits for
/// the queues to empty; shutdown stops the workers afterwards.
///
/// The steady-state dispatch path allocates nothing: tenant queues and
/// the run ring are pre-reserved at tenant creation, createJob() is the
/// only allocating call (it builds the machine copy and the session),
/// and submit()/rearm() recycle a finished job without touching the
/// heap. bench/sched_throughput asserts this with a counted allocator.
///
/// All counters are relaxed atomics, readable from any thread without
/// taking the scheduler lock: per-tenant dispatch/slice/step/fault
/// totals, admission traffic, live queue depths, worker occupancy, and
/// a 32-bucket log2-nanosecond histogram of dispatch latencies from
/// which snapshot() derives p50/p99.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SCHED_SESSIONSCHEDULER_H
#define SC_SCHED_SESSIONSCHEDULER_H

#include "metrics/Json.h"
#include "prepare/PrepareCache.h"
#include "session/VmSession.h"
#include "support/Assert.h"
#include "support/Rng.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sc::tier {
class TierController;
} // namespace sc::tier

namespace sc::sched {

using TenantId = uint32_t;

/// How a full tenant queue treats a new submission.
enum class Backpressure : uint8_t {
  Reject, ///< submit() returns SubmitResult::Rejected immediately
  Wait,   ///< submit() blocks until the queue has space (or admission closes)
};

/// Global scheduling discipline.
enum class SchedPolicy : uint8_t {
  Drr,  ///< deficit round-robin over guest-step budgets (fair share)
  Fifo, ///< global submission order, run to completion (deterministic)
};

struct SchedConfig {
  /// Worker threads in the pool.
  unsigned Workers = 2;
  /// Guest steps per slice, shared by every session the scheduler
  /// creates; also the unit the DRR deficit is measured against.
  uint64_t SliceSteps = 4096;
  /// Slices per bounded dispatch under Fifo (supervision latency bound;
  /// Drr derives its budget from the tenant deficit instead).
  uint64_t FifoDispatchSlices = 32;
  SchedPolicy Policy = SchedPolicy::Drr;
  /// Translation cache shared by every job; defaults to the process-wide
  /// cache. Must outlive the scheduler.
  prepare::PrepareCache *Cache = nullptr;
  /// Adaptive tiering: when set, createJob ignores its engine argument
  /// and every job starts on the controller's cold tier, reports its
  /// retired steps after each bounded dispatch, and is migrated to
  /// hotter engines at slice boundaries as its program earns them. The
  /// controller must be running in background mode (TierPolicy::
  /// Background) so re-preparation happens off the dispatch path — the
  /// scheduler only ever polls for finished translations under its
  /// lock, never translates there. Confirmed faults on a promoted job
  /// demote its program cold. Must outlive the scheduler.
  tier::TierController *Tier = nullptr;
  /// Durable checkpoint cadence handed to every session the scheduler
  /// creates (SessionPolicy::CheckpointEverySlices). Zero keeps the
  /// dispatch path checkpoint-free (and allocation-free).
  uint64_t CheckpointEverySlices = 0;
  /// Crash injection, cooperative flavor: every Nth bounded dispatch is
  /// doomed — the worker completes the dispatch at an ordinary slice
  /// boundary, then behaves as if it died there: the dispatch's entire
  /// effect on the job is discarded and the job restarts from its last
  /// checkpoint. Deterministic (a shared dispatch counter), so a Fifo
  /// one-worker run with crashes is comparable field-for-field to an
  /// uncrashed baseline. Zero disables. Requires checkpointing.
  uint64_t CrashEveryDispatches = 0;
  /// Crash injection, stress flavor: each dispatch is doomed with
  /// probability 1/N from a seeded generator — the hard-kill storm the
  /// TSan job runs, exercising recovery under multi-worker races. Zero
  /// disables; ignored when CrashEveryDispatches is set.
  uint64_t CrashOneIn = 0;
  uint64_t CrashSeed = 0x5eed;
};

struct TenantConfig {
  /// DRR quantum: guest steps credited when the tenant comes up for
  /// selection with an empty deficit. Larger quanta mean longer turns.
  uint64_t QuantumSteps = 4096;
  /// Bounded admission: jobs that may sit queued at once. Zero is legal
  /// and means "admit nothing": every submit is Rejected immediately,
  /// under Backpressure::Wait too (waiting for space that can never
  /// exist would block forever) — the fully-shedding tenant a service
  /// uses to quarantine a noisy client without deregistering it.
  size_t QueueCapacity = 16;
  Backpressure OnFull = Backpressure::Reject;
};

/// Supervision spec for one job. The scheduler checks Deadline between
/// bounded dispatches (and before the first), so an expired job stops
/// within one dispatch of the deadline without the session ever seeing a
/// wall clock; fuel is enforced inside the session at slice granularity.
struct JobSpec {
  uint32_t Entry = 0;
  uint64_t FuelSteps = UINT64_MAX;
  /// Relative deadline, armed at submit(); zero means none.
  std::chrono::nanoseconds Deadline{0};
  bool ConfirmFaults = false;
};

enum class JobState : uint8_t {
  Idle,    ///< created or rearmed, not submitted
  Queued,  ///< admitted, waiting for a worker
  Running, ///< a worker is inside a bounded dispatch
  Done,    ///< finished; result() is valid
};

const char *jobStateName(JobState S);

/// One schedulable unit: a supervised session over its own machine copy.
/// Created by SessionScheduler::createJob (the allocating call) and
/// owned by the scheduler; a finished job can be rearmed and resubmitted
/// without allocation. Not thread-safe except cancel() and state().
class Job {
public:
  JobState state() const { return State.load(std::memory_order_acquire); }
  TenantId tenant() const { return Tenant; }

  /// Requests cancellation; a running session stops at the next slice
  /// boundary, a queued one stops at the head of its next dispatch
  /// before executing any guest step. Callable from any thread.
  void cancel();

  /// Aggregated result across every bounded dispatch of this job:
  /// Outcome.Steps and Slices accumulate, everything else describes the
  /// final stop. Valid once state() == Done.
  const session::SessionResult &result() const { return Aggregate; }
  /// The session's supervision counters (accumulate across rearms).
  const metrics::SessionCounters &counters() const { return Sess->counters(); }
  const vm::Vm &machine() const { return *Machine; }
  /// Owner-side access between runs (e.g. resetOutput() before a rearm);
  /// only safe while the job is Idle or Done.
  vm::Vm &machine() { return *Machine; }
  session::VmSession &session() { return *Sess; }
  /// The job's current rung on the adaptive ladder (0 without a tier
  /// controller). Only safe to read while the job is Idle or Done.
  unsigned tier() const { return TierIdx; }

private:
  friend class SessionScheduler;
  Job() = default;

  TenantId Tenant = 0;
  JobSpec Spec;
  /// The source program, kept for hotness reporting under adaptive
  /// tiering (null without a controller). Must outlive the job.
  const vm::Code *Prog = nullptr;
  unsigned TierIdx = 0; ///< current rung; workers update under Mu
  std::unique_ptr<vm::Vm> Machine;
  std::unique_ptr<session::VmSession> Sess;
  std::atomic<JobState> State{JobState::Idle};
  /// Armed absolute deadline; time_point{} when none.
  std::chrono::steady_clock::time_point DeadlineAt{};
  /// Where the next dispatch enters (Spec.Entry, then ResumePc).
  uint32_t NextEntry = 0;
  /// Global admission stamp (Fifo ordering key).
  uint64_t Seq = 0;
  session::SessionResult Aggregate;
};

enum class SubmitResult : uint8_t {
  Admitted,
  Rejected, ///< queue full under Backpressure::Reject
  Closed,   ///< admission closed by drain()/shutdown()
};

/// Point-in-time counter snapshot, readable without the scheduler lock.
struct TenantCounters {
  std::string Name;
  uint64_t Submitted = 0;   ///< jobs admitted
  uint64_t Rejected = 0;    ///< submissions bounced by backpressure
  uint64_t Dispatches = 0;  ///< bounded dispatches executed
  uint64_t Slices = 0;      ///< engine entries across all dispatches
  uint64_t Steps = 0;       ///< guest steps across all dispatches
  uint64_t Preemptions = 0; ///< dispatches that hit their slice budget
  uint64_t Completed = 0;   ///< jobs finished (any stop kind)
  uint64_t Faults = 0;      ///< jobs finished with StopKind::Fault
  uint64_t DeadlineHits = 0;   ///< jobs stopped by their deadline
  uint64_t Cancellations = 0;  ///< jobs stopped by cancel()
  uint64_t Crashes = 0;        ///< dispatches killed by fault injection
  uint64_t Recoveries = 0;     ///< jobs restarted from a checkpoint
  uint64_t TierPromotions = 0; ///< jobs migrated to a hotter engine
  uint64_t TierDemotions = 0;  ///< programs pinned cold after a
                               ///< confirmed fault on a promoted tier
  uint64_t QueueDepth = 0;     ///< live gauge at snapshot time
};

inline constexpr unsigned LatencyBuckets = 32;

struct SchedSnapshot {
  std::vector<TenantCounters> Tenants;
  unsigned Workers = 0;
  uint64_t BusyWorkers = 0; ///< live gauge at snapshot time
  /// Dispatch wall-clock latencies, bucket i counting latencies in
  /// [2^i, 2^(i+1)) nanoseconds (bucket 31 is open-ended).
  uint64_t Latency[LatencyBuckets] = {};

  uint64_t totalSteps() const;
  uint64_t totalDispatches() const;
  /// Percentile over the latency histogram, resolved to the upper bucket
  /// bound in nanoseconds (0 when the histogram is empty). \p P in [0,1].
  double latencyPercentileNs(double P) const;
};

/// Serializes a snapshot for the sc-bench-v1 metrics pipeline: flat
/// totals, p50/p99 dispatch latency, and one object per tenant.
metrics::Json snapshotToJson(const SchedSnapshot &S);

/// The scheduler. Construction spawns the worker pool; destruction
/// shuts it down (cancelling whatever still runs). Public methods are
/// thread-safe unless noted.
class SessionScheduler {
public:
  explicit SessionScheduler(SchedConfig Config = {});
  ~SessionScheduler();

  SessionScheduler(const SessionScheduler &) = delete;
  SessionScheduler &operator=(const SessionScheduler &) = delete;

  /// Registers a tenant and pre-reserves its queue (allocates; do it at
  /// setup, not in the dispatch steady state).
  TenantId addTenant(std::string Name, TenantConfig Config = {});

  /// Builds a job: copies \p ProtoMachine, prepares \p Prog for \p E
  /// through the shared cache, and wraps both in a supervised session.
  /// The allocating call — everything after it is reusable.
  Job *createJob(TenantId T, const vm::Code &Prog, engine::EngineId E,
                 const vm::Vm &ProtoMachine, JobSpec Spec);

  /// Admits an Idle job to its tenant's queue, arming its deadline.
  /// Zero-alloc. Blocks only under Backpressure::Wait on a full queue.
  SubmitResult submit(Job *J);

  /// Resets a Done job for resubmission: fresh stacks, cleared resume
  /// and cancel flags, aggregate result zeroed. Guest data space and
  /// session counters persist (fuel already burned stays burned).
  /// Zero-alloc. Caller must ensure no worker still touches the job.
  void rearm(Job *J);

  /// Recycles a Done (or Idle) job into a logically brand-new one over
  /// the *same program and engine*: machine state replaced by a copy of
  /// \p ProtoMachine, session progress/checkpoints cleared, fuel budget
  /// reset to Spec.FuelSteps, spec replaced. The execution service's job
  /// free list uses this to serve unbounded job streams from a bounded
  /// job pool (createJob allocates a 1 MiB-class machine per call and
  /// the scheduler never frees jobs). Not available under adaptive
  /// tiering. Caller must ensure no worker still touches the job.
  void recycle(Job *J, const vm::Vm &ProtoMachine, JobSpec Spec);

  /// Restores a serialized sc-snap checkpoint into an Idle job: session
  /// state, resume entry, and reported aggregate all roll to the
  /// snapshot, exactly as crash recovery does for the scheduler's own
  /// checkpoints. The service's shard-rebuild path pushes harvested
  /// checkpoints from a killed shard's jobs into fresh jobs with this.
  /// Returns the snapshot layer's verdict; on error the job is unchanged
  /// and still Idle.
  snapshot::SnapshotError adoptCheckpoint(Job *J, const uint8_t *Data,
                                          size_t N);

  /// Blocks until \p J reaches Done. The job must have been submitted.
  void wait(Job *J);

  /// Closes admission and blocks until every admitted job is Done.
  /// Workers stay alive; reopen() admits again.
  void drain();
  /// Reopens admission after a drain.
  void reopen();

  /// Drains, then stops and joins the workers. Idempotent; the
  /// destructor calls it. A job that can never stop (no fuel, no
  /// deadline, guest loops forever) must be cancelled first or
  /// shutdown waits forever — supervision is policy, not magic.
  void shutdown();

  /// Counter snapshot. Takes the scheduler lock only to walk the tenant
  /// table; every counter is a relaxed atomic, so dispatching workers
  /// never block to update them and the values are per-counter
  /// consistent, not cross-counter consistent.
  SchedSnapshot snapshot() const;

  const SchedConfig &config() const { return Cfg; }
  prepare::PrepareCache &cache() { return *Cfg.Cache; }

private:
  /// Fixed-capacity ring; never reallocates after reserve().
  template <typename T> struct Ring {
    std::vector<T> Buf;
    size_t Head = 0, Count = 0;
    void reserve(size_t N) { Buf.assign(N, T{}); }
    bool empty() const { return Count == 0; }
    bool full() const { return Count == Buf.size(); }
    size_t size() const { return Count; }
    T &at(size_t I) { return Buf[(Head + I) % Buf.size()]; }
    void pushBack(T V) {
      SC_ASSERT(!full(), "ring overflow");
      Buf[(Head + Count) % Buf.size()] = V;
      ++Count;
    }
    void pushFront(T V) {
      SC_ASSERT(!full(), "ring overflow");
      Head = (Head + Buf.size() - 1) % Buf.size();
      Buf[Head] = V;
      ++Count;
    }
    T popFront() {
      SC_ASSERT(!empty(), "ring underflow");
      T V = Buf[Head];
      Head = (Head + 1) % Buf.size();
      --Count;
      return V;
    }
  };

  /// Per-tenant live counters: relaxed atomics in a deque so addresses
  /// stay stable while tenants are added.
  struct TenantStats {
    std::atomic<uint64_t> Submitted{0}, Rejected{0}, Dispatches{0}, Slices{0},
        Steps{0}, Preemptions{0}, Completed{0}, Faults{0}, DeadlineHits{0},
        Cancellations{0}, Crashes{0}, Recoveries{0}, TierPromotions{0},
        TierDemotions{0}, QueueDepth{0};
  };

  struct TenantState {
    std::string Name;
    TenantConfig Cfg;
    Ring<Job *> Queue;
    uint64_t Deficit = 0;
    bool InRunRing = false;
  };

  void workerLoop();
  /// Picks the next tenant index to serve; Mu held. Returns false when
  /// the run ring is empty.
  bool selectTenant(size_t &OutIdx);
  /// Executes one bounded dispatch of \p J; Mu NOT held.
  session::SessionResult dispatch(Job *J, uint64_t MaxSlices);
  /// Folds a dispatch result into the job and decides requeue vs
  /// completion; Mu held.
  void settle(Job *J, TenantState &TS, TenantStats &St,
              const session::SessionResult &R);
  void finish(Job *J, TenantStats &St, session::StopKind Stop);
  /// Crash recovery: discards the in-flight state of \p J (its doomed
  /// dispatch's result is never settled), rolls the session and the
  /// aggregate back to the last checkpoint, and requeues; Mu held.
  void recover(Job *J, TenantState &TS, TenantStats &St);
  void noteLatency(uint64_t Ns);

  SchedConfig Cfg;

  mutable std::mutex Mu;
  std::condition_variable WorkCv;  ///< workers: run ring non-empty / stop
  std::condition_variable DoneCv;  ///< waiters: job done / queues empty
  std::condition_variable AdmitCv; ///< submitters: queue space freed

  std::deque<TenantState> Tenants;   // Mu
  std::deque<TenantStats> Stats;     // atomics, lock-free reads
  Ring<uint32_t> RunRing;            // Mu: tenants with queued jobs
  std::deque<std::unique_ptr<Job>> Jobs; // Mu (growth only in createJob)
  std::vector<std::thread> Pool;
  uint64_t NextSeq = 0;   // Mu
  uint64_t CrashClock = 0; // Mu: dispatches since start (fault injection)
  Rng CrashRng{1};         // Mu: hard-kill doom decisions
  uint64_t Pending = 0;   // Mu: admitted jobs not yet Done
  bool AdmissionOpen = true; // Mu
  bool Stopping = false;     // Mu
  bool Stopped = false;      // Mu (workers joined)

  std::atomic<uint64_t> BusyWorkers{0};
  std::atomic<uint64_t> Latency[LatencyBuckets] = {};
  /// Serializes dispatches of non-reentrant engine flavors
  /// (EngineCaps::Reentrant == false, i.e. call-threaded code's static
  /// VM registers): at most one such dispatch runs at a time.
  std::mutex NonReentrantMu;
};

} // namespace sc::sched

#endif // SC_SCHED_SESSIONSCHEDULER_H
