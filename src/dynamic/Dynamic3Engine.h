//===-- dynamic/Dynamic3Engine.h - 3-state dynamic engine ------*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 13 machine made executable: dynamic stack caching
/// with two registers and three states (0, 1 or 2 top-of-stack items in
/// registers), per-state dispatch tables and table-lookup dispatch as in
/// Figure 19. Frequent primitives have hand-specialized copies per state;
/// infrequent ones exist only in state 0, and the other states' table
/// entries point to spill shims that flush the cache and re-dispatch -
/// the paper's "generate a transition into a state for which the
/// instruction is implemented" (Section 5, applied dynamically).
///
//===----------------------------------------------------------------------===//

#ifndef SC_DYNAMIC_DYNAMIC3ENGINE_H
#define SC_DYNAMIC_DYNAMIC3ENGINE_H

#include "vm/ExecContext.h"

namespace sc::dynamic {

/// Runs \p Ctx.Prog from \p Entry on the 3-state dynamically cached
/// computed-goto engine. Observably equivalent to the reference engines.
/// Translates per run (into the context's pooled stream buffer); use the
/// prepared form below to amortize translation across runs.
vm::RunOutcome runDynamic3Engine(vm::ExecContext &Ctx, uint32_t Entry);

/// Runs a prepared stream: [opcode index, operand] per instruction with
/// static branch operands pre-scaled to threaded offsets
/// (vm::translateStream with null handlers). This engine dispatches by
/// opcode through per-state tables, so the stream carries no addresses
/// and one translation serves every ExecContext. \p Ctx.Prog must be the
/// program the stream was translated from.
vm::RunOutcome runDynamic3Prepared(vm::ExecContext &Ctx, uint32_t Entry,
                                   const vm::Cell *Stream);

} // namespace sc::dynamic

#endif // SC_DYNAMIC_DYNAMIC3ENGINE_H
