//===-- dynamic/Dynamic3Engine.h - 3-state dynamic engine ------*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 13 machine made executable: dynamic stack caching
/// with two registers and three states (0, 1 or 2 top-of-stack items in
/// registers), per-state dispatch tables and table-lookup dispatch as in
/// Figure 19. Frequent primitives have hand-specialized copies per state;
/// infrequent ones exist only in state 0, and the other states' table
/// entries point to spill shims that flush the cache and re-dispatch -
/// the paper's "generate a transition into a state for which the
/// instruction is implemented" (Section 5, applied dynamically).
///
//===----------------------------------------------------------------------===//

#ifndef SC_DYNAMIC_DYNAMIC3ENGINE_H
#define SC_DYNAMIC_DYNAMIC3ENGINE_H

#include "vm/ExecContext.h"

namespace sc::dynamic {

/// Runs \p Ctx.Prog from \p Entry on the 3-state dynamically cached
/// computed-goto engine. Observably equivalent to the reference engines.
vm::RunOutcome runDynamic3Engine(vm::ExecContext &Ctx, uint32_t Entry);

} // namespace sc::dynamic

#endif // SC_DYNAMIC_DYNAMIC3ENGINE_H
