//===-- dynamic/ModelInterpreter.cpp - Value-level cache model ------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//

#include "dynamic/ModelInterpreter.h"

#include "metrics/Counters.h"
#include "support/Assert.h"
#include "vm/ArithOps.h"

#include <vector>

using namespace sc;
using namespace sc::cache;
using namespace sc::vm;

namespace {

/// The data stack with its top cached in a register file under the
/// minimal-organization policy. Counts every management event by running
/// the analytic transition function alongside the value movements, and
/// asserts that the two always agree on the cache depth.
class ValueCache {
  Cell Regs[MaxCacheRegs];
  unsigned Depth = 0; ///< items cached; item at depth i is Regs[Depth-1-i]
  std::vector<Cell> Mem; ///< the in-memory part, bottom first
  MinimalPolicy Policy;
  Counts Total;
  bool PreparedUnderflow = false;
  unsigned CurIn = 0;

public:
  explicit ValueCache(const MinimalPolicy &P) : Policy(P) {}

  const Counts &counts() const { return Total; }
  uint64_t totalDepth() const { return Mem.size() + Depth; }
  unsigned cachedDepth() const { return Depth; }

  /// Copies the full logical stack, bottom first (for ExecContext sync
  /// and shadow checks).
  std::vector<Cell> flatten() const {
    std::vector<Cell> Out = Mem;
    for (unsigned I = 0; I < Depth; ++I)
      Out.push_back(Regs[I]);
    return Out;
  }

  /// Seeds the stack from a flat vector.
  void seed(const Cell *Data, unsigned N) {
    Mem.assign(Data, Data + N);
    Depth = 0;
  }

  /// Prepares an instruction with effect (In, Out): checks logical depth,
  /// gathers nothing yet. Must be called before in()/commit().
  bool begin(unsigned In) {
    if (totalDepth() < In)
      return false;
    CurIn = In;
    PreparedUnderflow = Depth < In;
    return true;
  }

  /// Input \p I (0 = TOS) of the current instruction.
  Cell in(unsigned I) const {
    SC_ASSERT(I < CurIn, "input index out of range");
    if (I < Depth)
      return Regs[Depth - 1 - I];
    unsigned FromMem = I - Depth;
    return Mem[Mem.size() - 1 - FromMem];
  }

  /// Consumes the inputs, places \p NOut outputs (Outs[0] = new TOS) and
  /// performs the policy's fills/spills, accumulating costs.
  void commit(const Cell *Outs, unsigned NOut) {
    unsigned MirrorDepth = Depth;
    Counts C = applyEffectMinimal(MirrorDepth, CurIn, NOut, Policy);
    Total += C;

    unsigned N = Policy.NumRegs;
    if (PreparedUnderflow) {
      // All cached items and some memory items are consumed.
      Mem.resize(Mem.size() - (CurIn - Depth));
      Depth = 0;
      // Outputs: the deepest ones beyond the register file go to memory.
      unsigned ToRegs = NOut <= N ? NOut : N;
      for (unsigned I = NOut; I > ToRegs; --I)
        Mem.push_back(Outs[I - 1]);
      for (unsigned I = ToRegs; I > 0; --I)
        Regs[Depth++] = Outs[I - 1];
    } else {
      Depth -= CurIn;
      if (Depth + NOut > N) {
        // Overflow: spill the deepest survivors so the final depth is the
        // followup state F; if F < NOut the deepest outputs spill too.
        unsigned F = Policy.OverflowFollowupDepth;
        unsigned Spill = Depth + NOut - F;
        unsigned FromSurvivors = Spill <= Depth ? Spill : Depth;
        for (unsigned I = 0; I < FromSurvivors; ++I)
          Mem.push_back(Regs[I]);
        for (unsigned I = 0; I + FromSurvivors < Depth; ++I)
          Regs[I] = Regs[I + FromSurvivors]; // the counted moves
        Depth -= FromSurvivors;
        unsigned OutsToMem = Spill - FromSurvivors;
        for (unsigned I = NOut; I > NOut - OutsToMem; --I)
          Mem.push_back(Outs[I - 1]);
        for (unsigned I = NOut - OutsToMem; I > 0; --I)
          Regs[Depth++] = Outs[I - 1];
      } else {
        for (unsigned I = NOut; I > 0; --I)
          Regs[Depth++] = Outs[I - 1];
      }
    }
    SC_ASSERT(Depth == MirrorDepth,
              "value cache diverged from the analytic transition");
  }

  void countDispatch() {
    ++Total.Dispatches;
    ++Total.Insts;
  }
};

} // namespace

sc::dynamic::ModelConfig sc::dynamic::referenceModelConfig() {
  ModelConfig Cfg;
  Cfg.Policy = {3, 2};
  Cfg.VerifyShadow = true;
  return Cfg;
}

sc::dynamic::ModelOutcome
sc::dynamic::runModelInterpreter(ExecContext &Ctx, uint32_t Entry,
                                 const ModelConfig &Config) {
  SC_ASSERT(Ctx.Prog && Ctx.Machine, "unbound ExecContext");
  const Code &Prog = *Ctx.Prog;
  const Inst *Insts = Prog.Insts.data();
  const UCell CodeSize = Prog.Insts.size();
  Vm &TheVm = *Ctx.Machine;

  ValueCache Cache(Config.Policy);
  Cache.seed(Ctx.DS.data(), Ctx.DsDepth);
  std::vector<Cell> Shadow;
  if (Config.VerifyShadow)
    Shadow.assign(Ctx.DS.begin(), Ctx.DS.begin() + Ctx.DsDepth);

  Cell *RStack = Ctx.RS.data();
  const unsigned DsCap = Ctx.DsCapacity;
  const unsigned RsCap = Ctx.RsCapacity;
  unsigned Rsp = Ctx.RsDepth;
  uint64_t StepsLeft = Ctx.MaxSteps;
  uint64_t Steps = 0;
  RunStatus St = RunStatus::Halted;
  uint32_t Ip = Entry;
  Cell FaultAddr = 0;
  bool HasFaultAddr = false;

  ModelOutcome Result;
  // Seed the sentinel return address unless this call resumes an
  // interrupted run (Ctx.Resume), which already carries it.
  if (!Ctx.Resume) {
    if (Rsp >= RsCap) {
      SC_IF_STATS(if (Ctx.Stats)
                    metrics::noteTrap(*Ctx.Stats, RunStatus::RStackOverflow));
      Result.Outcome = makeFault(RunStatus::RStackOverflow, 0, Entry,
                                 Prog.Insts[Entry].Op, Ctx.DsDepth, Rsp);
      return Result;
    }
    RStack[Rsp++] = 0;
  }

  auto SyncOut = [&](RunStatus Status) {
    std::vector<Cell> Flat = Cache.flatten();
    SC_ASSERT(Flat.size() <= DsCap, "stack overflow");
    for (size_t I = 0; I < Flat.size(); ++I)
      Ctx.DS[I] = Flat[I];
    Ctx.DsDepth = static_cast<unsigned>(Flat.size());
    Ctx.RsDepth = Rsp;
    Ctx.noteHighWater();
    Result.Outcome = {Status, Steps};
    Result.Costs = Cache.counts();
    // The value cache counts real management traffic as it happens;
    // export it into the engine counters rather than re-deriving it.
    SC_IF_STATS(if (Ctx.Stats) {
      Ctx.Stats->ReconcileLoads += Result.Costs.Loads;
      Ctx.Stats->ReconcileStores += Result.Costs.Stores;
      Ctx.Stats->ReconcileMoves += Result.Costs.Moves;
      metrics::noteTrap(*Ctx.Stats, Status);
    });
    if (Status != RunStatus::Halted) {
      // Ip still indexes the trapping instruction (it advances at the
      // loop bottom); on StepLimit it is the resume point. Either way
      // the faulting PC is Ip.
      Result.Outcome.Fault =
          FaultInfo{Ip, Ip < CodeSize ? Insts[Ip].Op : Opcode::Halt,
                    Ctx.DsDepth, Rsp, FaultAddr, HasFaultAddr};
    }
  };

#define MODEL_TRAP(S)                                                          \
  {                                                                            \
    St = RunStatus::S;                                                         \
    goto Done;                                                                 \
  }
#define MODEL_TRAP_MEM(A)                                                      \
  {                                                                            \
    FaultAddr = (A);                                                           \
    HasFaultAddr = true;                                                       \
    MODEL_TRAP(BadMemAccess);                                                  \
  }
  // Consumes the current instruction's inputs and traps: the canonical
  // trap states (InstBodies.inc) pop operands before faulting, so the
  // model must too or its trap-time stack would diverge observably.
#define MODEL_TRAP_CONSUMED(S, X)                                              \
  {                                                                            \
    Cache.commit(nullptr, 0);                                                  \
    ShadowApply(X, nullptr, 0);                                                \
    MODEL_TRAP(S);                                                             \
  }
#define MODEL_TRAP_MEM_CONSUMED(A, X)                                          \
  {                                                                            \
    FaultAddr = (A);                                                           \
    HasFaultAddr = true;                                                       \
    MODEL_TRAP_CONSUMED(BadMemAccess, X);                                      \
  }
#define NEED(X)                                                                \
  if (!Cache.begin(X))                                                         \
  MODEL_TRAP(StackUnderflow)
#define ROOM(X)                                                                \
  if (Cache.totalDepth() + (X) > DsCap)                                        \
  MODEL_TRAP(StackOverflow)
#define RNEED(X)                                                               \
  if (Rsp < static_cast<unsigned>(X))                                          \
  MODEL_TRAP(RStackUnderflow)
#define RROOM(X)                                                               \
  if (Rsp + static_cast<unsigned>(X) > RsCap)                                  \
  MODEL_TRAP(RStackOverflow)

  for (;;) {
    if (StepsLeft == 0)
      MODEL_TRAP(StepLimit);
    --StepsLeft;
    const Inst &In = Insts[Ip];
    uint32_t NextIp = Ip + 1;
    ++Steps;
    Cache.countDispatch();
    SC_IF_STATS(if (Ctx.Stats) metrics::noteCachedDispatch(
                    *Ctx.Stats, In.Op, Cache.cachedDepth(),
                    Config.Policy.NumRegs));

    // Shadow bookkeeping: simple flat-stack semantics, maintained
    // independently from the cache and compared after each step.
    auto ShadowApply = [&](unsigned X, const Cell *Outs, unsigned Y) {
      if (!Config.VerifyShadow)
        return;
      SC_ASSERT(Shadow.size() >= X, "shadow underflow");
      Shadow.resize(Shadow.size() - X);
      for (unsigned I = Y; I > 0; --I)
        Shadow.push_back(Outs[I - 1]);
    };

    Cell Out[4];
    switch (In.Op) {
    case Opcode::Halt:
      MODEL_TRAP(Halted);
    case Opcode::Nop:
      NEED(0);
      Cache.commit(nullptr, 0);
      break;
    case Opcode::Lit:
      ROOM(1);
      NEED(0);
      Out[0] = In.Operand;
      Cache.commit(Out, 1);
      ShadowApply(0, Out, 1);
      break;

#define MODEL_BINOP(Name, Expr)                                                \
  case Opcode::Name: {                                                         \
    NEED(2);                                                                   \
    Cell B = Cache.in(0);                                                      \
    Cell A = Cache.in(1);                                                      \
    (void)A;                                                                   \
    (void)B;                                                                   \
    Out[0] = (Expr);                                                           \
    Cache.commit(Out, 1);                                                      \
    ShadowApply(2, Out, 1);                                                    \
    break;                                                                     \
  }

      MODEL_BINOP(Add, arithAdd(A, B))
      MODEL_BINOP(Sub, arithSub(A, B))
      MODEL_BINOP(Mul, arithMul(A, B))
      MODEL_BINOP(And, A &B)
      MODEL_BINOP(Or, A | B)
      MODEL_BINOP(Xor, A ^ B)
      MODEL_BINOP(Lshift, arithLshift(A, B))
      MODEL_BINOP(Rshift, arithRshift(A, B))
      MODEL_BINOP(Min, A < B ? A : B)
      MODEL_BINOP(Max, A > B ? A : B)
      MODEL_BINOP(Eq, boolCell(A == B))
      MODEL_BINOP(Ne, boolCell(A != B))
      MODEL_BINOP(Lt, boolCell(A < B))
      MODEL_BINOP(Gt, boolCell(A > B))
      MODEL_BINOP(Le, boolCell(A <= B))
      MODEL_BINOP(Ge, boolCell(A >= B))
      MODEL_BINOP(ULt, arithULt(A, B))
#undef MODEL_BINOP

    case Opcode::Div:
    case Opcode::Mod: {
      NEED(2);
      Cell B = Cache.in(0);
      Cell A = Cache.in(1);
      if (B == 0)
        MODEL_TRAP_CONSUMED(DivByZero, 2);
      Out[0] = In.Op == Opcode::Div ? arithDiv(A, B) : arithMod(A, B);
      Cache.commit(Out, 1);
      ShadowApply(2, Out, 1);
      break;
    }

#define MODEL_UNOP(Name, Expr)                                                 \
  case Opcode::Name: {                                                         \
    NEED(1);                                                                   \
    Cell A = Cache.in(0);                                                      \
    Out[0] = (Expr);                                                           \
    Cache.commit(Out, 1);                                                      \
    ShadowApply(1, Out, 1);                                                    \
    break;                                                                     \
  }
      MODEL_UNOP(Negate, arithNegate(A))
      MODEL_UNOP(Invert, ~A)
      MODEL_UNOP(Abs, arithAbs(A))
      MODEL_UNOP(OnePlus, arithOnePlus(A))
      MODEL_UNOP(OneMinus, arithOneMinus(A))
      MODEL_UNOP(TwoStar, arithTwoStar(A))
      MODEL_UNOP(TwoSlash, A >> 1)
      MODEL_UNOP(Cells, arithCells(A))
      MODEL_UNOP(ZeroEq, boolCell(A == 0))
      MODEL_UNOP(ZeroNe, boolCell(A != 0))
      MODEL_UNOP(ZeroLt, boolCell(A < 0))
      MODEL_UNOP(ZeroGt, boolCell(A > 0))
#undef MODEL_UNOP

    case Opcode::Dup: {
      NEED(1);
      ROOM(1);
      Out[0] = Out[1] = Cache.in(0);
      Cache.commit(Out, 2);
      ShadowApply(1, Out, 2);
      break;
    }
    case Opcode::Drop:
      NEED(1);
      Cache.commit(nullptr, 0);
      ShadowApply(1, nullptr, 0);
      break;
    case Opcode::Swap: {
      NEED(2);
      Out[0] = Cache.in(1);
      Out[1] = Cache.in(0);
      Cache.commit(Out, 2);
      ShadowApply(2, Out, 2);
      break;
    }
    case Opcode::Over: {
      NEED(2);
      ROOM(1);
      Out[0] = Cache.in(1);
      Out[1] = Cache.in(0);
      Out[2] = Cache.in(1);
      Cache.commit(Out, 3);
      ShadowApply(2, Out, 3);
      break;
    }
    case Opcode::Rot: {
      NEED(3);
      Out[0] = Cache.in(2);
      Out[1] = Cache.in(0);
      Out[2] = Cache.in(1);
      Cache.commit(Out, 3);
      ShadowApply(3, Out, 3);
      break;
    }
    case Opcode::Nip: {
      NEED(2);
      Out[0] = Cache.in(0);
      Cache.commit(Out, 1);
      ShadowApply(2, Out, 1);
      break;
    }
    case Opcode::Tuck: {
      NEED(2);
      ROOM(1);
      Out[0] = Cache.in(0);
      Out[1] = Cache.in(1);
      Out[2] = Cache.in(0);
      Cache.commit(Out, 3);
      ShadowApply(2, Out, 3);
      break;
    }
    case Opcode::TwoDup: {
      NEED(2);
      ROOM(2);
      Out[0] = Cache.in(0);
      Out[1] = Cache.in(1);
      Out[2] = Cache.in(0);
      Out[3] = Cache.in(1);
      Cache.commit(Out, 4);
      ShadowApply(2, Out, 4);
      break;
    }
    case Opcode::TwoDrop:
      NEED(2);
      Cache.commit(nullptr, 0);
      ShadowApply(2, nullptr, 0);
      break;

    case Opcode::Fetch: {
      NEED(1);
      Cell Addr = Cache.in(0);
      if (!TheVm.validRange(Addr, CellBytes))
        MODEL_TRAP_MEM_CONSUMED(Addr, 1);
      Out[0] = TheVm.loadCell(Addr);
      Cache.commit(Out, 1);
      ShadowApply(1, Out, 1);
      break;
    }
    case Opcode::Store: {
      NEED(2);
      Cell Addr = Cache.in(0);
      Cell V = Cache.in(1);
      if (!TheVm.validRange(Addr, CellBytes))
        MODEL_TRAP_MEM_CONSUMED(Addr, 2);
      TheVm.storeCell(Addr, V);
      Cache.commit(nullptr, 0);
      ShadowApply(2, nullptr, 0);
      break;
    }
    case Opcode::CFetch: {
      NEED(1);
      Cell Addr = Cache.in(0);
      if (!TheVm.validRange(Addr, 1))
        MODEL_TRAP_MEM_CONSUMED(Addr, 1);
      Out[0] = TheVm.loadByte(Addr);
      Cache.commit(Out, 1);
      ShadowApply(1, Out, 1);
      break;
    }
    case Opcode::CStore: {
      NEED(2);
      Cell Addr = Cache.in(0);
      Cell V = Cache.in(1);
      if (!TheVm.validRange(Addr, 1))
        MODEL_TRAP_MEM_CONSUMED(Addr, 2);
      TheVm.storeByte(Addr, V);
      Cache.commit(nullptr, 0);
      ShadowApply(2, nullptr, 0);
      break;
    }
    case Opcode::PlusStore: {
      NEED(2);
      Cell Addr = Cache.in(0);
      Cell V = Cache.in(1);
      if (!TheVm.validRange(Addr, CellBytes))
        MODEL_TRAP_MEM_CONSUMED(Addr, 2);
      TheVm.storeCell(Addr,
                      static_cast<Cell>(
                          static_cast<UCell>(TheVm.loadCell(Addr)) +
                          static_cast<UCell>(V)));
      Cache.commit(nullptr, 0);
      ShadowApply(2, nullptr, 0);
      break;
    }

    case Opcode::ToR: {
      NEED(1);
      RROOM(1);
      RStack[Rsp++] = Cache.in(0);
      Cache.commit(nullptr, 0);
      ShadowApply(1, nullptr, 0);
      break;
    }
    case Opcode::RFrom: {
      ROOM(1);
      RNEED(1);
      NEED(0);
      Out[0] = RStack[--Rsp];
      Cache.commit(Out, 1);
      ShadowApply(0, Out, 1);
      break;
    }
    case Opcode::RFetch: {
      ROOM(1);
      RNEED(1);
      NEED(0);
      Out[0] = RStack[Rsp - 1];
      Cache.commit(Out, 1);
      ShadowApply(0, Out, 1);
      break;
    }
    case Opcode::DoSetup: {
      NEED(2);
      RROOM(2);
      RStack[Rsp++] = Cache.in(1); // limit
      RStack[Rsp++] = Cache.in(0); // index
      Cache.commit(nullptr, 0);
      ShadowApply(2, nullptr, 0);
      break;
    }
    case Opcode::LoopI: {
      ROOM(1);
      RNEED(1);
      NEED(0);
      Out[0] = RStack[Rsp - 1];
      Cache.commit(Out, 1);
      ShadowApply(0, Out, 1);
      break;
    }
    case Opcode::LoopJ: {
      ROOM(1);
      RNEED(3);
      NEED(0);
      Out[0] = RStack[Rsp - 3];
      Cache.commit(Out, 1);
      ShadowApply(0, Out, 1);
      break;
    }
    case Opcode::Unloop:
      RNEED(2);
      Rsp -= 2;
      NEED(0);
      Cache.commit(nullptr, 0);
      break;

    case Opcode::Branch:
      NEED(0);
      Cache.commit(nullptr, 0);
      NextIp = static_cast<uint32_t>(In.Operand);
      break;
    case Opcode::QBranch: {
      NEED(1);
      Cell Flag = Cache.in(0);
      Cache.commit(nullptr, 0);
      ShadowApply(1, nullptr, 0);
      if (Flag == 0)
        NextIp = static_cast<uint32_t>(In.Operand);
      break;
    }
    case Opcode::LoopBr: {
      RNEED(2);
      NEED(0);
      Cache.commit(nullptr, 0);
      Cell Index = RStack[Rsp - 1] + 1;
      Cell Limit = RStack[Rsp - 2];
      if (Index != Limit) {
        RStack[Rsp - 1] = Index;
        NextIp = static_cast<uint32_t>(In.Operand);
      } else {
        Rsp -= 2;
      }
      break;
    }
    case Opcode::PlusLoopBr: {
      NEED(1);
      RNEED(2);
      Cell N = Cache.in(0);
      Cache.commit(nullptr, 0);
      ShadowApply(1, nullptr, 0);
      Cell Index = RStack[Rsp - 1];
      Cell Limit = RStack[Rsp - 2];
      __int128 D = static_cast<__int128>(Index) - Limit;
      __int128 D2 = D + N;
      bool Crossed = (D < 0 && D2 >= 0) || (D >= 0 && D2 < 0);
      if (!Crossed) {
        RStack[Rsp - 1] =
            static_cast<Cell>(static_cast<UCell>(Index) +
                              static_cast<UCell>(N));
        NextIp = static_cast<uint32_t>(In.Operand);
      } else {
        Rsp -= 2;
      }
      break;
    }
    case Opcode::Call:
      RROOM(1);
      NEED(0);
      Cache.commit(nullptr, 0);
      RStack[Rsp++] = NextIp;
      NextIp = static_cast<uint32_t>(In.Operand);
      break;
    case Opcode::Exit: {
      RNEED(1);
      NEED(0);
      Cache.commit(nullptr, 0);
      Cell Ret = RStack[--Rsp];
      if (static_cast<UCell>(Ret) >= CodeSize)
        MODEL_TRAP(BadMemAccess);
      NextIp = static_cast<uint32_t>(Ret);
      break;
    }

    case Opcode::Emit: {
      NEED(1);
      TheVm.emitChar(Cache.in(0));
      Cache.commit(nullptr, 0);
      ShadowApply(1, nullptr, 0);
      break;
    }
    case Opcode::Dot: {
      NEED(1);
      TheVm.printNumber(Cache.in(0));
      Cache.commit(nullptr, 0);
      ShadowApply(1, nullptr, 0);
      break;
    }
    case Opcode::Cr:
      NEED(0);
      TheVm.emitChar('\n');
      Cache.commit(nullptr, 0);
      break;
    case Opcode::Space:
      NEED(0);
      TheVm.emitChar(' ');
      Cache.commit(nullptr, 0);
      break;
    case Opcode::TypeOp: {
      NEED(2);
      Cell Len = Cache.in(0);
      Cell Addr = Cache.in(1);
      if (Len < 0 || !TheVm.validRange(Addr, Len))
        MODEL_TRAP_MEM_CONSUMED(Addr, 2);
      TheVm.typeRange(Addr, Len);
      Cache.commit(nullptr, 0);
      ShadowApply(2, nullptr, 0);
      break;
    }

    // Superinstructions (synthesized by the combining pass).
    case Opcode::LitAdd:
    case Opcode::LitSub:
    case Opcode::LitLt:
    case Opcode::LitEq: {
      if (Cache.totalDepth() < 1) {
        // Materialize the literal before trapping, as unfused code would.
        Out[0] = In.Operand;
        (void)Cache.begin(0);
        Cache.commit(Out, 1);
        ShadowApply(0, Out, 1);
        MODEL_TRAP(StackUnderflow);
      }
      NEED(1);
      Cell A = Cache.in(0);
      Cell B = In.Operand;
      if (In.Op == Opcode::LitAdd)
        Out[0] = arithAdd(A, B);
      else if (In.Op == Opcode::LitSub)
        Out[0] = arithSub(A, B);
      else if (In.Op == Opcode::LitLt)
        Out[0] = boolCell(A < B);
      else
        Out[0] = boolCell(A == B);
      Cache.commit(Out, 1);
      ShadowApply(1, Out, 1);
      break;
    }
    case Opcode::LitFetch: {
      ROOM(1);
      NEED(0);
      if (!TheVm.validRange(In.Operand, CellBytes))
        MODEL_TRAP_MEM(In.Operand);
      Out[0] = TheVm.loadCell(In.Operand);
      Cache.commit(Out, 1);
      ShadowApply(0, Out, 1);
      break;
    }
    case Opcode::LitStore: {
      if (Cache.totalDepth() < 1) {
        Out[0] = In.Operand;
        (void)Cache.begin(0);
        Cache.commit(Out, 1);
        ShadowApply(0, Out, 1);
        MODEL_TRAP(StackUnderflow);
      }
      NEED(1);
      if (!TheVm.validRange(In.Operand, CellBytes))
        MODEL_TRAP_MEM_CONSUMED(In.Operand, 1);
      TheVm.storeCell(In.Operand, Cache.in(0));
      Cache.commit(nullptr, 0);
      ShadowApply(1, nullptr, 0);
      break;
    }
    }

    if (Config.VerifyShadow) {
      std::vector<Cell> Flat = Cache.flatten();
      SC_ASSERT(Flat == Shadow,
                "cache contents diverged from the shadow stack");
    }
    Ip = NextIp;
  }

Done:
#undef MODEL_TRAP
#undef MODEL_TRAP_MEM
#undef MODEL_TRAP_CONSUMED
#undef MODEL_TRAP_MEM_CONSUMED
#undef NEED
#undef ROOM
#undef RNEED
#undef RROOM
  SyncOut(St);
  return Result;
}
