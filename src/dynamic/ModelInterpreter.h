//===-- dynamic/ModelInterpreter.h - Value-level cache model ---*- C++ -*-===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An executable model of dynamic stack caching: runs real programs while
/// keeping the top of the data stack in an explicit register file managed
/// by the minimal-organization policy (any register count, any overflow
/// followup state). It produces the same observable results as the plain
/// engines and the same event counts as the analytic transition function
/// cache::applyEffectMinimal - the test suite checks both, which is what
/// ties the paper's simulated numbers to real execution.
///
/// With VerifyShadow enabled, the interpreter additionally maintains a
/// flat shadow stack and asserts after every instruction that the
/// registers and stack memory together spell exactly the shadow contents.
///
//===----------------------------------------------------------------------===//

#ifndef SC_DYNAMIC_MODELINTERPRETER_H
#define SC_DYNAMIC_MODELINTERPRETER_H

#include "cache/CostModel.h"
#include "cache/Transition.h"
#include "vm/ExecContext.h"

namespace sc::dynamic {

/// Result of a model run.
struct ModelOutcome {
  vm::RunOutcome Outcome;
  cache::Counts Costs; ///< cache-management events (dispatches included)
};

/// Configuration of the model interpreter.
struct ModelConfig {
  cache::MinimalPolicy Policy{2, 1};
  /// Cross-check the register file against a shadow stack after every
  /// instruction (slow; for tests).
  bool VerifyShadow = false;
};

/// Runs \p Ctx.Prog from \p Entry under the dynamic-caching model.
ModelOutcome runModelInterpreter(vm::ExecContext &Ctx, uint32_t Entry,
                                 const ModelConfig &Config);

/// The configuration the engine registry, the differential harness and
/// the prepare subsystem all run the model under: a 3-register minimal
/// organization with overflow followup 2, shadow checking on (the model
/// exists to be cross-checked, so the registry keeps the checks).
ModelConfig referenceModelConfig();

} // namespace sc::dynamic

#endif // SC_DYNAMIC_MODELINTERPRETER_H
