//===-- dynamic/Dynamic3Engine.cpp - 3-state dynamic engine ---------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic stack caching with the Figure 13 three-state machine:
///
///   state 0: no stack items in registers
///   state 1: TOS in R0
///   state 2: TOS in R1, second item in R0
///
/// The cache state is represented by nothing but the (real) program
/// counter: every handler is compiled for one entry state and dispatches
/// the next instruction through the table of its exit state (Figure 19's
/// table-lookup dispatch). Hot primitives have specialized copies for all
/// three states; rare primitives exist only in state 0 and are reached
/// through shims that spill the registers - the "leave out rare
/// state/instruction combinations" strategy.
///
//===----------------------------------------------------------------------===//

#include "dynamic/Dynamic3Engine.h"

#include "metrics/Counters.h"
#include "vm/ArithOps.h"
#include "vm/Translate.h"
#include "support/Assert.h"

using namespace sc;
using namespace sc::vm;

vm::RunOutcome sc::dynamic::runDynamic3Prepared(ExecContext &Ctx,
                                                uint32_t Entry,
                                                const Cell *Stream) {
  SC_ASSERT(Ctx.Prog && Ctx.Machine, "unbound ExecContext");
  const Code &Prog = *Ctx.Prog;
  const UCell CodeSize = Prog.Insts.size();
  SC_ASSERT(Entry < CodeSize, "entry out of range");

  // Generic (state 0, memory-only) handlers exist for every opcode.
  static const void *const Generic[NumOpcodes] = {
#define SC_OPCODE_LABEL(Name, Mn, DI, DO, RI, RO, HasOp, Kind) &&G_##Name,
      SC_FOR_EACH_OPCODE(SC_OPCODE_LABEL)
#undef SC_OPCODE_LABEL
  };

  // Per-state dispatch tables; filled below, hot entries overridden with
  // specialized handlers.
  const void *Tab0[NumOpcodes];
  const void *Tab1[NumOpcodes];
  const void *Tab2[NumOpcodes];
  for (unsigned I = 0; I < NumOpcodes; ++I) {
    Tab0[I] = Generic[I];
    Tab1[I] = &&Shim1;
    Tab2[I] = &&Shim2;
  }
#define SC_HOT(Name)                                                           \
  do {                                                                         \
    unsigned Idx = static_cast<unsigned>(Opcode::Name);                        \
    Tab0[Idx] = &&S0_##Name;                                                   \
    Tab1[Idx] = &&S1_##Name;                                                   \
    Tab2[Idx] = &&S2_##Name;                                                   \
  } while (0)
  SC_HOT(Lit);
  SC_HOT(Add);
  SC_HOT(Sub);
  SC_HOT(Mul);
  SC_HOT(And);
  SC_HOT(Or);
  SC_HOT(Xor);
  SC_HOT(Eq);
  SC_HOT(Ne);
  SC_HOT(Lt);
  SC_HOT(Gt);
  SC_HOT(Le);
  SC_HOT(Ge);
  SC_HOT(ULt);
  SC_HOT(OnePlus);
  SC_HOT(OneMinus);
  SC_HOT(ZeroEq);
  SC_HOT(ZeroNe);
  SC_HOT(ZeroGt);
  SC_HOT(Cells);
  SC_HOT(Dup);
  SC_HOT(Drop);
  SC_HOT(Swap);
  SC_HOT(Over);
  SC_HOT(Nip);
  SC_HOT(Fetch);
  SC_HOT(Store);
  SC_HOT(CFetch);
  SC_HOT(CStore);
  SC_HOT(QBranch);
  SC_HOT(Branch);
  SC_HOT(Call);
  SC_HOT(Exit);
  SC_HOT(ToR);
  SC_HOT(RFrom);
  SC_HOT(RFetch);
  SC_HOT(LoopI);
  SC_HOT(LoopBr);
  SC_HOT(LitAdd);
  SC_HOT(LitSub);
  SC_HOT(LitLt);
  SC_HOT(LitEq);
  SC_HOT(LitFetch);
  SC_HOT(LitStore);
#undef SC_HOT

  Vm &TheVm = *Ctx.Machine;
  const Cell *Base = Stream;
  const Cell *Ip = Base + 2 * Entry;
  const Cell *W = Ip;
  Cell *Stack = Ctx.DS.data();
  Cell *RStack = Ctx.RS.data();
  unsigned Dsp = Ctx.DsDepth; // memory part of the data stack
  unsigned Rsp = Ctx.RsDepth;
  const unsigned DsCap = Ctx.DsCapacity;
  const unsigned RsCap = Ctx.RsCapacity;
  Cell R0 = 0, R1 = 0;   // the stack cache registers
  unsigned ExitState = 0; // cache state at trap time, for write-back
  uint64_t StepsLeft = Ctx.MaxSteps;
  uint64_t Steps = 0;
  RunStatus St = RunStatus::Halted;
  Cell PopTmp = 0;
  Cell FaultAddr = 0;
  bool HasFaultAddr = false;

  // Seed the sentinel return address unless this call resumes an
  // interrupted run (Ctx.Resume), which already carries it. A resumed
  // run re-enters in cache state 0 — dynamic caching is per-run state,
  // and every StepLimit stop writes the cached items back to memory.
  if (!Ctx.Resume) {
    if (Rsp >= RsCap) {
      SC_IF_STATS(if (Ctx.Stats)
                    metrics::noteTrap(*Ctx.Stats, RunStatus::RStackOverflow));
      return makeFault(RunStatus::RStackOverflow, 0, Entry,
                       Prog.Insts[Entry].Op, Ctx.DsDepth, Rsp);
    }
    RStack[Rsp++] = 0;
  }

  // Dispatch macros: one per exit state. The cache state lives purely in
  // which table the next instruction is fetched through.
#define STEP_GUARD(State)                                                      \
  if (StepsLeft == 0) {                                                        \
    ExitState = (State);                                                       \
    St = RunStatus::StepLimit;                                                 \
    goto Done;                                                                 \
  }                                                                            \
  --StepsLeft;                                                                 \
  ++Steps;
#define STATS_DISPATCH(State)                                                  \
  SC_IF_STATS(if (Ctx.Stats) metrics::noteCachedDispatch(                      \
                  *Ctx.Stats, static_cast<Opcode>(W[0]), (State), 2u))
#define NEXT0                                                                  \
  {                                                                            \
    STEP_GUARD(0)                                                              \
    W = Ip;                                                                    \
    Ip += 2;                                                                   \
    STATS_DISPATCH(0);                                                         \
    goto *Tab0[W[0]];                                                          \
  }
#define NEXT1                                                                  \
  {                                                                            \
    STEP_GUARD(1)                                                              \
    W = Ip;                                                                    \
    Ip += 2;                                                                   \
    STATS_DISPATCH(1);                                                         \
    goto *Tab1[W[0]];                                                          \
  }
#define NEXT2                                                                  \
  {                                                                            \
    STEP_GUARD(2)                                                              \
    W = Ip;                                                                    \
    Ip += 2;                                                                   \
    STATS_DISPATCH(2);                                                         \
    goto *Tab2[W[0]];                                                          \
  }
#define TRAPS(State, Status)                                                   \
  {                                                                            \
    ExitState = (State);                                                       \
    St = RunStatus::Status;                                                    \
    goto Done;                                                                 \
  }
#define TRAPMEM(State, A)                                                      \
  {                                                                            \
    FaultAddr = (A);                                                           \
    HasFaultAddr = true;                                                       \
    TRAPS(State, BadMemAccess);                                                \
  }
  // Depth checks: NEEDMEMk(State, n) requires n items in the memory part
  // (the cached items of the state are implicitly present).
#define NEEDMEM(State, N)                                                      \
  if (Dsp < static_cast<unsigned>(N))                                          \
  TRAPS(State, StackUnderflow)
#define ROOMK(State, CachedK, N)                                               \
  if (Dsp + (CachedK) + static_cast<unsigned>(N) > DsCap)                      \
  TRAPS(State, StackOverflow)
#define RNEEDK(State, N)                                                       \
  if (Rsp < static_cast<unsigned>(N))                                          \
  TRAPS(State, RStackUnderflow)
#define RROOMK(State, N)                                                       \
  if (Rsp + static_cast<unsigned>(N) > RsCap)                                  \
  TRAPS(State, RStackOverflow)
  // Static branch operands in the prepared stream are pre-scaled threaded
  // offsets (JUMPk); Exit's guest-supplied return address is still an
  // instruction index and rescales through JUMPDYNk.
#define JUMP0(T)                                                               \
  {                                                                            \
    Ip = Base + static_cast<UCell>(T);                                         \
    NEXT0;                                                                     \
  }
#define JUMP1(T)                                                               \
  {                                                                            \
    Ip = Base + static_cast<UCell>(T);                                         \
    NEXT1;                                                                     \
  }
#define JUMP2(T)                                                               \
  {                                                                            \
    Ip = Base + static_cast<UCell>(T);                                         \
    NEXT2;                                                                     \
  }
#define JUMPDYN0(T)                                                            \
  {                                                                            \
    Ip = Base + 2 * static_cast<UCell>(T);                                     \
    NEXT0;                                                                     \
  }
#define JUMPDYN1(T)                                                            \
  {                                                                            \
    Ip = Base + 2 * static_cast<UCell>(T);                                     \
    NEXT1;                                                                     \
  }
#define JUMPDYN2(T)                                                            \
  {                                                                            \
    Ip = Base + 2 * static_cast<UCell>(T);                                     \
    NEXT2;                                                                     \
  }

  NEXT0; // enter in state 0

  // --- Spill shims: rare op in a cached state -> flush, redo in state 0.
Shim1:
  Stack[Dsp++] = R0;
  SC_IF_STATS(if (Ctx.Stats) ++Ctx.Stats->ReconcileStores);
  goto *Tab0[W[0]];
Shim2:
  Stack[Dsp++] = R0;
  Stack[Dsp++] = R1;
  SC_IF_STATS(if (Ctx.Stats) Ctx.Stats->ReconcileStores += 2);
  goto *Tab0[W[0]];

  // --- Specialized copies ---------------------------------------------------

S0_Lit:
  ROOMK(0, 0, 1);
  R0 = W[1];
  NEXT1;
S1_Lit:
  ROOMK(1, 1, 1);
  R1 = W[1];
  NEXT2;
S2_Lit:
  // Overflow: spill the deepest cached item, keep the cache full (the
  // "full followup state" minimizes cache/memory traffic).
  ROOMK(2, 2, 1);
  Stack[Dsp++] = R0;
  R0 = R1;
  R1 = W[1];
  NEXT2;

  // Binary operations: ( A B -- A op B ).
#define SC_BIN3(Name, EXPR)                                                    \
  S0_##Name: {                                                                 \
    NEEDMEM(0, 2);                                                             \
    Cell B = Stack[--Dsp];                                                     \
    Cell A = Stack[--Dsp];                                                     \
    (void)A;                                                                   \
    (void)B;                                                                   \
    R0 = (EXPR);                                                               \
    NEXT1;                                                                     \
  }                                                                            \
  S1_##Name: {                                                                 \
    NEEDMEM(1, 1);                                                             \
    Cell B = R0;                                                               \
    Cell A = Stack[--Dsp];                                                     \
    (void)A;                                                                   \
    (void)B;                                                                   \
    R0 = (EXPR);                                                               \
    NEXT1;                                                                     \
  }                                                                            \
  S2_##Name: {                                                                 \
    Cell B = R1;                                                               \
    Cell A = R0;                                                               \
    (void)A;                                                                   \
    (void)B;                                                                   \
    R0 = (EXPR);                                                               \
    NEXT1;                                                                     \
  }

  SC_BIN3(Add, arithAdd(A, B))
  SC_BIN3(Sub, arithSub(A, B))
  SC_BIN3(Mul, arithMul(A, B))
  SC_BIN3(And, A &B)
  SC_BIN3(Or, A | B)
  SC_BIN3(Xor, A ^ B)
  SC_BIN3(Eq, boolCell(A == B))
  SC_BIN3(Ne, boolCell(A != B))
  SC_BIN3(Lt, boolCell(A < B))
  SC_BIN3(Gt, boolCell(A > B))
  SC_BIN3(Le, boolCell(A <= B))
  SC_BIN3(Ge, boolCell(A >= B))
  SC_BIN3(ULt, arithULt(A, B))
#undef SC_BIN3

  // Unary operations: ( A -- f(A) ) stay in their state.
#define SC_UN3(Name, EXPR)                                                     \
  S0_##Name: {                                                                 \
    NEEDMEM(0, 1);                                                             \
    Cell A = Stack[--Dsp];                                                     \
    R0 = (EXPR);                                                               \
    NEXT1;                                                                     \
  }                                                                            \
  S1_##Name: {                                                                 \
    Cell A = R0;                                                               \
    R0 = (EXPR);                                                               \
    NEXT1;                                                                     \
  }                                                                            \
  S2_##Name: {                                                                 \
    Cell A = R1;                                                               \
    R1 = (EXPR);                                                               \
    NEXT2;                                                                     \
  }

  SC_UN3(OnePlus, arithOnePlus(A))
  SC_UN3(OneMinus, arithOneMinus(A))
  SC_UN3(ZeroEq, boolCell(A == 0))
  SC_UN3(ZeroNe, boolCell(A != 0))
  SC_UN3(ZeroGt, boolCell(A > 0))
  SC_UN3(Cells, arithCells(A))
#undef SC_UN3

S0_Dup:
  // ( a -- a a ): cache the copy; a itself stays in memory as the second.
  // The copy raises the logical depth even though Dsp is unchanged, so the
  // overflow check must not be skipped (sliced runs re-enter in state 0 and
  // would otherwise defer the trap past where the other engines raise it).
  NEEDMEM(0, 1);
  ROOMK(0, 0, 1);
  R0 = Stack[Dsp - 1];
  NEXT1;
S1_Dup:
  ROOMK(1, 1, 1);
  R1 = R0;
  NEXT2;
S2_Dup:
  ROOMK(2, 2, 1);
  Stack[Dsp++] = R0; // overflow: spill the deepest cached item
  R0 = R1;
  NEXT2;

S0_Drop:
  NEEDMEM(0, 1);
  --Dsp;
  NEXT0;
S1_Drop:
  NEXT0;
S2_Drop:
  NEXT1;

S0_Swap : {
  // ( a b -- b a ): load both, exchanged, into the cache.
  NEEDMEM(0, 2);
  Cell B = Stack[--Dsp];
  Cell A = Stack[--Dsp];
  R0 = B; // new second item
  R1 = A; // new TOS
  NEXT2;
}
S1_Swap:
  NEEDMEM(1, 1);
  R1 = Stack[--Dsp]; // new TOS = old second; old TOS stays in R0 as second
  NEXT2;
S2_Swap : {
  Cell T = R0;
  R0 = R1;
  R1 = T;
  NEXT2;
}

S0_Over:
  // ( a b -- a b a ): cache b as second (R0) and the a-copy as TOS (R1);
  // a itself stays in memory as the third item. Net logical growth is one
  // item (two cached, one consumed from memory), so check room like Dup.
  NEEDMEM(0, 2);
  ROOMK(0, 0, 1);
  R0 = Stack[Dsp - 1];
  R1 = Stack[Dsp - 2];
  --Dsp;
  NEXT2;
S1_Over:
  NEEDMEM(1, 1);
  ROOMK(1, 1, 1);
  R1 = Stack[Dsp - 1]; // a copied on top; a itself stays in memory
  NEXT2;
S2_Over : {
  ROOMK(2, 2, 1);
  Stack[Dsp++] = R0; // spill a (it remains the third item)
  Cell T = R0;
  R0 = R1;
  R1 = T;
  NEXT2;
}

S0_Nip : {
  NEEDMEM(0, 2);
  Cell B = Stack[--Dsp];
  --Dsp;
  R0 = B;
  NEXT1;
}
S1_Nip:
  NEEDMEM(1, 1);
  --Dsp;
  NEXT1;
S2_Nip:
  R0 = R1;
  NEXT1;

S0_Fetch : {
  NEEDMEM(0, 1);
  Cell Addr = Stack[--Dsp];
  if (!TheVm.validRange(Addr, CellBytes))
    TRAPMEM(0, Addr);
  R0 = TheVm.loadCell(Addr);
  NEXT1;
}
S1_Fetch:
  // On a bad address the reference engine has already consumed it.
  if (!TheVm.validRange(R0, CellBytes))
    TRAPMEM(0, R0);
  R0 = TheVm.loadCell(R0);
  NEXT1;
S2_Fetch:
  if (!TheVm.validRange(R1, CellBytes))
    TRAPMEM(1, R1);
  R1 = TheVm.loadCell(R1);
  NEXT2;

S0_Store : {
  NEEDMEM(0, 2);
  Cell Addr = Stack[--Dsp];
  Cell V = Stack[--Dsp];
  if (!TheVm.validRange(Addr, CellBytes))
    TRAPMEM(0, Addr);
  TheVm.storeCell(Addr, V);
  NEXT0;
}
S1_Store : {
  NEEDMEM(1, 1);
  Cell V = Stack[--Dsp];
  if (!TheVm.validRange(R0, CellBytes))
    TRAPMEM(0, R0);
  TheVm.storeCell(R0, V);
  NEXT0;
}
S2_Store:
  if (!TheVm.validRange(R1, CellBytes))
    TRAPMEM(0, R1);
  TheVm.storeCell(R1, R0);
  NEXT0;

S0_CFetch : {
  NEEDMEM(0, 1);
  Cell Addr = Stack[--Dsp];
  if (!TheVm.validRange(Addr, 1))
    TRAPMEM(0, Addr);
  R0 = TheVm.loadByte(Addr);
  NEXT1;
}
S1_CFetch:
  if (!TheVm.validRange(R0, 1))
    TRAPMEM(0, R0);
  R0 = TheVm.loadByte(R0);
  NEXT1;
S2_CFetch:
  if (!TheVm.validRange(R1, 1))
    TRAPMEM(1, R1);
  R1 = TheVm.loadByte(R1);
  NEXT2;

S0_CStore : {
  NEEDMEM(0, 2);
  Cell Addr = Stack[--Dsp];
  Cell V = Stack[--Dsp];
  if (!TheVm.validRange(Addr, 1))
    TRAPMEM(0, Addr);
  TheVm.storeByte(Addr, V);
  NEXT0;
}
S1_CStore : {
  NEEDMEM(1, 1);
  Cell V = Stack[--Dsp];
  if (!TheVm.validRange(R0, 1))
    TRAPMEM(0, R0);
  TheVm.storeByte(R0, V);
  NEXT0;
}
S2_CStore:
  if (!TheVm.validRange(R1, 1))
    TRAPMEM(0, R1);
  TheVm.storeByte(R1, R0);
  NEXT0;

S0_QBranch : {
  NEEDMEM(0, 1);
  Cell Flag = Stack[--Dsp];
  if (Flag == 0)
    JUMP0(W[1]);
  NEXT0;
}
S1_QBranch:
  if (R0 == 0)
    JUMP0(W[1]);
  NEXT0;
S2_QBranch:
  if (R1 == 0)
    JUMP1(W[1]);
  NEXT1;

S0_Branch:
  JUMP0(W[1]);
S1_Branch:
  JUMP1(W[1]);
S2_Branch:
  JUMP2(W[1]);

  // Calls and returns preserve the cache state: dynamic caching needs no
  // calling convention (Section 4).
S0_Call:
  RROOMK(0, 1);
  RStack[Rsp++] = static_cast<Cell>((W - Base) / 2 + 1);
  JUMP0(W[1]);
S1_Call:
  RROOMK(1, 1);
  RStack[Rsp++] = static_cast<Cell>((W - Base) / 2 + 1);
  JUMP1(W[1]);
S2_Call:
  RROOMK(2, 1);
  RStack[Rsp++] = static_cast<Cell>((W - Base) / 2 + 1);
  JUMP2(W[1]);

S0_Exit : {
  RNEEDK(0, 1);
  Cell Ret = RStack[--Rsp];
  if (static_cast<UCell>(Ret) >= CodeSize)
    TRAPS(0, BadMemAccess);
  JUMPDYN0(Ret);
}
S1_Exit : {
  RNEEDK(1, 1);
  Cell Ret = RStack[--Rsp];
  if (static_cast<UCell>(Ret) >= CodeSize)
    TRAPS(1, BadMemAccess);
  JUMPDYN1(Ret);
}
S2_Exit : {
  RNEEDK(2, 1);
  Cell Ret = RStack[--Rsp];
  if (static_cast<UCell>(Ret) >= CodeSize)
    TRAPS(2, BadMemAccess);
  JUMPDYN2(Ret);
}

S0_ToR:
  NEEDMEM(0, 1);
  RROOMK(0, 1);
  RStack[Rsp++] = Stack[--Dsp];
  NEXT0;
S1_ToR:
  RROOMK(1, 1);
  RStack[Rsp++] = R0;
  NEXT0;
S2_ToR:
  RROOMK(2, 1);
  RStack[Rsp++] = R1;
  NEXT1;

S0_RFrom:
  RNEEDK(0, 1);
  ROOMK(0, 0, 1);
  R0 = RStack[--Rsp];
  NEXT1;
S1_RFrom:
  RNEEDK(1, 1);
  ROOMK(1, 1, 1);
  R1 = RStack[--Rsp];
  NEXT2;
S2_RFrom:
  RNEEDK(2, 1);
  ROOMK(2, 2, 1);
  Stack[Dsp++] = R0;
  R0 = R1;
  R1 = RStack[--Rsp];
  NEXT2;

S0_RFetch:
  RNEEDK(0, 1);
  ROOMK(0, 0, 1);
  R0 = RStack[Rsp - 1];
  NEXT1;
S1_RFetch:
  RNEEDK(1, 1);
  ROOMK(1, 1, 1);
  R1 = RStack[Rsp - 1];
  NEXT2;
S2_RFetch:
  RNEEDK(2, 1);
  ROOMK(2, 2, 1);
  Stack[Dsp++] = R0;
  R0 = R1;
  R1 = RStack[Rsp - 1];
  NEXT2;

S0_LoopI:
  RNEEDK(0, 1);
  ROOMK(0, 0, 1);
  R0 = RStack[Rsp - 1];
  NEXT1;
S1_LoopI:
  RNEEDK(1, 1);
  ROOMK(1, 1, 1);
  R1 = RStack[Rsp - 1];
  NEXT2;
S2_LoopI:
  RNEEDK(2, 1);
  ROOMK(2, 2, 1);
  Stack[Dsp++] = R0;
  R0 = R1;
  R1 = RStack[Rsp - 1];
  NEXT2;

  // (loop) touches only the return stack: one copy per state, all alike.
#define SC_LOOPBR(State, NextMacro)                                            \
  {                                                                            \
    RNEEDK(State, 2);                                                          \
    Cell Index = RStack[Rsp - 1] + 1;                                          \
    if (Index != RStack[Rsp - 2]) {                                            \
      RStack[Rsp - 1] = Index;                                                 \
      Ip = Base + static_cast<UCell>(W[1]);                                    \
    } else {                                                                   \
      Rsp -= 2;                                                                \
    }                                                                          \
    NextMacro;                                                                 \
  }
S0_LoopBr:
  SC_LOOPBR(0, NEXT0)
S1_LoopBr:
  SC_LOOPBR(1, NEXT1)
S2_LoopBr:
  SC_LOOPBR(2, NEXT2)
#undef SC_LOOPBR


  // --- Superinstructions: lit + consumer pairs in one dispatch ---------------

#define SC_DLIT(Name, EXPR)                                                    \
  S0_##Name: {                                                                 \
    if (Dsp < 1) { /* materialize the literal, as unfused code would */       \
      R0 = W[1];                                                               \
      TRAPS(1, StackUnderflow);                                                \
    }                                                                          \
    Cell A = Stack[--Dsp];                                                     \
    Cell N = W[1];                                                             \
    (void)A;                                                                   \
    (void)N;                                                                   \
    R0 = (EXPR);                                                               \
    NEXT1;                                                                     \
  }                                                                            \
  S1_##Name: {                                                                 \
    Cell A = R0;                                                               \
    Cell N = W[1];                                                             \
    (void)A;                                                                   \
    (void)N;                                                                   \
    R0 = (EXPR);                                                               \
    NEXT1;                                                                     \
  }                                                                            \
  S2_##Name: {                                                                 \
    Cell A = R1;                                                               \
    Cell N = W[1];                                                             \
    (void)A;                                                                   \
    (void)N;                                                                   \
    R1 = (EXPR);                                                               \
    NEXT2;                                                                     \
  }

  SC_DLIT(LitAdd, arithAdd(A, N))
  SC_DLIT(LitSub, arithSub(A, N))
  SC_DLIT(LitLt, boolCell(A < N))
  SC_DLIT(LitEq, boolCell(A == N))
#undef SC_DLIT

S0_LitFetch:
  ROOMK(0, 0, 1);
  if (!TheVm.validRange(W[1], CellBytes))
    TRAPMEM(0, W[1]);
  R0 = TheVm.loadCell(W[1]);
  NEXT1;
S1_LitFetch:
  ROOMK(1, 1, 1);
  if (!TheVm.validRange(W[1], CellBytes))
    TRAPMEM(1, W[1]);
  R1 = TheVm.loadCell(W[1]);
  NEXT2;
S2_LitFetch:
  ROOMK(2, 2, 1);
  if (!TheVm.validRange(W[1], CellBytes))
    TRAPMEM(2, W[1]);
  Stack[Dsp++] = R0;
  R0 = R1;
  R1 = TheVm.loadCell(W[1]);
  NEXT2;

S0_LitStore : {
  if (Dsp < 1) { // materialize the address, as unfused code would
    R0 = W[1];
    TRAPS(1, StackUnderflow);
  }
  Cell V = Stack[--Dsp];
  if (!TheVm.validRange(W[1], CellBytes))
    TRAPMEM(0, W[1]);
  TheVm.storeCell(W[1], V);
  NEXT0;
}
S1_LitStore:
  if (!TheVm.validRange(W[1], CellBytes))
    TRAPMEM(0, W[1]);
  TheVm.storeCell(W[1], R0);
  NEXT0;
S2_LitStore:
  if (!TheVm.validRange(W[1], CellBytes))
    TRAPMEM(1, W[1]);
  TheVm.storeCell(W[1], R1);
  NEXT1;

  // --- Generic state-0 handlers for every opcode -----------------------------

#define SC_CASE(Name) G_##Name:
#define SC_END NEXT0
#define SC_OPERAND (W[1])
#define SC_NEXTIP ((W - Base) / 2 + 1)
#define SC_JUMP(T) JUMP0(T)
#define SC_JUMP_DYN(T) JUMPDYN0(T)
#define SC_CODE_SIZE CodeSize
#define SC_TRAP(S) TRAPS(0, S)
#define SC_TRAP_MEM(A) TRAPMEM(0, A)
#define SC_HALT TRAPS(0, Halted)
#define SC_NEED(N) NEEDMEM(0, N)
#define SC_ROOM(N) ROOMK(0, 0, N)
#define SC_PUSH(X) Stack[Dsp++] = (X)
#define SC_POPV (Stack[--Dsp])
#define SC_RNEED(N) RNEEDK(0, N)
#define SC_RROOM(N) RROOMK(0, N)
#define SC_RPUSH(X) RStack[Rsp++] = (X)
#define SC_RPOPV (RStack[--Rsp])
#define SC_RPEEK(I) (RStack[Rsp - 1 - (I)])
#define SC_VMREF TheVm
#define SC_RTRAFFIC(S, L, M) ((void)0)

#include "dispatch/InstBodies.inc"

#undef SC_CASE
#undef SC_END
#undef SC_OPERAND
#undef SC_NEXTIP
#undef SC_JUMP
#undef SC_JUMP_DYN
#undef SC_CODE_SIZE
#undef SC_TRAP
#undef SC_HALT
#undef SC_NEED
#undef SC_ROOM
#undef SC_PUSH
#undef SC_POPV
#undef SC_RNEED
#undef SC_RROOM
#undef SC_RPUSH
#undef SC_RPOPV
#undef SC_RPEEK
#undef SC_VMREF
#undef SC_RTRAFFIC
#undef SC_TRAP_MEM

Done:
#undef STEP_GUARD
#undef STATS_DISPATCH
#undef NEXT0
#undef NEXT1
#undef NEXT2
#undef TRAPS
#undef NEEDMEM
#undef ROOMK
#undef RNEEDK
#undef RROOMK
#undef JUMP0
#undef JUMP1
#undef JUMP2
#undef JUMPDYN0
#undef JUMPDYN1
#undef JUMPDYN2
#undef TRAPMEM
  (void)PopTmp;
  // Write the cached items back to the flat stack.
  if (ExitState >= 1)
    Stack[Dsp++] = R0;
  if (ExitState == 2)
    Stack[Dsp++] = R1;
  SC_IF_STATS(if (Ctx.Stats) {
    Ctx.Stats->ReconcileStores += ExitState;
    metrics::noteTrap(*Ctx.Stats, St);
  });
  Ctx.DsDepth = Dsp;
  Ctx.RsDepth = Rsp;
  Ctx.noteHighWater();
  if (St == RunStatus::Halted)
    return {St, Steps};
  // The fault depths are the post-flush (logical) depths, matching the
  // reference engines. W still addresses the trapping instruction; the
  // step guard fires before W is updated, so Ip is the resume point.
  const uint32_t FaultPc = static_cast<uint32_t>(
      (St == RunStatus::StepLimit ? Ip - Base : W - Base) / 2);
  return makeFault(St, Steps, FaultPc,
                   FaultPc < CodeSize ? Prog.Insts[FaultPc].Op : Opcode::Halt,
                   Dsp, Rsp, FaultAddr, HasFaultAddr);
}

vm::RunOutcome sc::dynamic::runDynamic3Engine(ExecContext &Ctx,
                                              uint32_t Entry) {
  SC_ASSERT(Ctx.Prog && Ctx.Machine, "unbound ExecContext");
  const UCell CodeSize = Ctx.Prog->Insts.size();
  SC_ASSERT(Entry < CodeSize, "entry out of range");
  // Threaded code for table-lookup dispatch: [opcode index, operand],
  // into the context's pooled stream buffer.
  if (Ctx.StreamScratch.size() < 2 * CodeSize)
    Ctx.StreamScratch.resize(2 * CodeSize);
  translateStream(*Ctx.Prog, nullptr, Ctx.StreamScratch.data());
  return runDynamic3Prepared(Ctx, Entry, Ctx.StreamScratch.data());
}
