file(REMOVE_RECURSE
  "CMakeFiles/fuzz_engines.dir/fuzz_engines.cpp.o"
  "CMakeFiles/fuzz_engines.dir/fuzz_engines.cpp.o.d"
  "fuzz_engines"
  "fuzz_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
