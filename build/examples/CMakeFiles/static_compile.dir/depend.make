# Empty dependencies file for static_compile.
# This may be replaced when dependencies are built.
