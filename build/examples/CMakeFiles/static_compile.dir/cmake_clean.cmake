file(REMOVE_RECURSE
  "CMakeFiles/static_compile.dir/static_compile.cpp.o"
  "CMakeFiles/static_compile.dir/static_compile.cpp.o.d"
  "static_compile"
  "static_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
