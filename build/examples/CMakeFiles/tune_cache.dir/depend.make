# Empty dependencies file for tune_cache.
# This may be replaced when dependencies are built.
