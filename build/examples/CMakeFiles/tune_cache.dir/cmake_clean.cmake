file(REMOVE_RECURSE
  "CMakeFiles/tune_cache.dir/tune_cache.cpp.o"
  "CMakeFiles/tune_cache.dir/tune_cache.cpp.o.d"
  "tune_cache"
  "tune_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
