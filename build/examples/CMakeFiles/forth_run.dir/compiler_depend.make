# Empty compiler generated dependencies file for forth_run.
# This may be replaced when dependencies are built.
