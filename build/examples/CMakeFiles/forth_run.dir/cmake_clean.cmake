file(REMOVE_RECURSE
  "CMakeFiles/forth_run.dir/forth_run.cpp.o"
  "CMakeFiles/forth_run.dir/forth_run.cpp.o.d"
  "forth_run"
  "forth_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forth_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
