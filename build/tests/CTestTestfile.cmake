# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/vm_tests[1]_include.cmake")
include("/root/repo/build/tests/forth_tests[1]_include.cmake")
include("/root/repo/build/tests/engine_tests[1]_include.cmake")
include("/root/repo/build/tests/cache_tests[1]_include.cmake")
include("/root/repo/build/tests/trace_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/dynamic_tests[1]_include.cmake")
include("/root/repo/build/tests/staticcache_tests[1]_include.cmake")
include("/root/repo/build/tests/optimal_tests[1]_include.cmake")
include("/root/repo/build/tests/twostack_tests[1]_include.cmake")
include("/root/repo/build/tests/edgecase_tests[1]_include.cmake")
include("/root/repo/build/tests/reconcile_optimality_tests[1]_include.cmake")
include("/root/repo/build/tests/prefetch_tests[1]_include.cmake")
include("/root/repo/build/tests/torture_tests[1]_include.cmake")
include("/root/repo/build/tests/superinst_tests[1]_include.cmake")
add_test(fuzz_smoke "/root/repo/build/examples/fuzz_engines" "250" "42")
set_tests_properties(fuzz_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;78;add_test;/root/repo/tests/CMakeLists.txt;0;")
