
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/prefetch_tests.cpp" "tests/CMakeFiles/prefetch_tests.dir/prefetch_tests.cpp.o" "gcc" "tests/CMakeFiles/prefetch_tests.dir/prefetch_tests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/sc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/forth/CMakeFiles/sc_forth.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dispatch/CMakeFiles/sc_dispatch.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
