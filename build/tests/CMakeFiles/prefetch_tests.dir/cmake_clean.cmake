file(REMOVE_RECURSE
  "CMakeFiles/prefetch_tests.dir/prefetch_tests.cpp.o"
  "CMakeFiles/prefetch_tests.dir/prefetch_tests.cpp.o.d"
  "prefetch_tests"
  "prefetch_tests.pdb"
  "prefetch_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
