# Empty compiler generated dependencies file for prefetch_tests.
# This may be replaced when dependencies are built.
