file(REMOVE_RECURSE
  "CMakeFiles/forth_tests.dir/forth_tests.cpp.o"
  "CMakeFiles/forth_tests.dir/forth_tests.cpp.o.d"
  "forth_tests"
  "forth_tests.pdb"
  "forth_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forth_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
