# Empty compiler generated dependencies file for forth_tests.
# This may be replaced when dependencies are built.
