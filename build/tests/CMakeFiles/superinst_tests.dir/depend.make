# Empty dependencies file for superinst_tests.
# This may be replaced when dependencies are built.
