file(REMOVE_RECURSE
  "CMakeFiles/superinst_tests.dir/superinst_tests.cpp.o"
  "CMakeFiles/superinst_tests.dir/superinst_tests.cpp.o.d"
  "superinst_tests"
  "superinst_tests.pdb"
  "superinst_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superinst_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
