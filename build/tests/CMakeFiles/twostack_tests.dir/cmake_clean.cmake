file(REMOVE_RECURSE
  "CMakeFiles/twostack_tests.dir/twostack_tests.cpp.o"
  "CMakeFiles/twostack_tests.dir/twostack_tests.cpp.o.d"
  "twostack_tests"
  "twostack_tests.pdb"
  "twostack_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twostack_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
