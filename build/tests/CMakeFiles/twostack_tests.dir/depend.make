# Empty dependencies file for twostack_tests.
# This may be replaced when dependencies are built.
