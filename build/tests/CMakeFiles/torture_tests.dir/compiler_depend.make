# Empty compiler generated dependencies file for torture_tests.
# This may be replaced when dependencies are built.
