file(REMOVE_RECURSE
  "CMakeFiles/torture_tests.dir/torture_tests.cpp.o"
  "CMakeFiles/torture_tests.dir/torture_tests.cpp.o.d"
  "torture_tests"
  "torture_tests.pdb"
  "torture_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torture_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
