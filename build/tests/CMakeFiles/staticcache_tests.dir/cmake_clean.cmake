file(REMOVE_RECURSE
  "CMakeFiles/staticcache_tests.dir/staticcache_tests.cpp.o"
  "CMakeFiles/staticcache_tests.dir/staticcache_tests.cpp.o.d"
  "staticcache_tests"
  "staticcache_tests.pdb"
  "staticcache_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staticcache_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
