# Empty compiler generated dependencies file for staticcache_tests.
# This may be replaced when dependencies are built.
