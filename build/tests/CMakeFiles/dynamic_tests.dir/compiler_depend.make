# Empty compiler generated dependencies file for dynamic_tests.
# This may be replaced when dependencies are built.
