file(REMOVE_RECURSE
  "CMakeFiles/dynamic_tests.dir/dynamic_tests.cpp.o"
  "CMakeFiles/dynamic_tests.dir/dynamic_tests.cpp.o.d"
  "dynamic_tests"
  "dynamic_tests.pdb"
  "dynamic_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
