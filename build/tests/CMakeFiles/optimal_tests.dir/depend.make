# Empty dependencies file for optimal_tests.
# This may be replaced when dependencies are built.
