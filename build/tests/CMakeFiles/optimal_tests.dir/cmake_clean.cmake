file(REMOVE_RECURSE
  "CMakeFiles/optimal_tests.dir/optimal_tests.cpp.o"
  "CMakeFiles/optimal_tests.dir/optimal_tests.cpp.o.d"
  "optimal_tests"
  "optimal_tests.pdb"
  "optimal_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
