# Empty dependencies file for edgecase_tests.
# This may be replaced when dependencies are built.
