file(REMOVE_RECURSE
  "CMakeFiles/edgecase_tests.dir/edgecase_tests.cpp.o"
  "CMakeFiles/edgecase_tests.dir/edgecase_tests.cpp.o.d"
  "edgecase_tests"
  "edgecase_tests.pdb"
  "edgecase_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgecase_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
