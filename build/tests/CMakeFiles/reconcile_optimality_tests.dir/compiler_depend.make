# Empty compiler generated dependencies file for reconcile_optimality_tests.
# This may be replaced when dependencies are built.
