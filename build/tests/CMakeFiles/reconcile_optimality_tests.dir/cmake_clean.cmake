file(REMOVE_RECURSE
  "CMakeFiles/reconcile_optimality_tests.dir/reconcile_optimality_tests.cpp.o"
  "CMakeFiles/reconcile_optimality_tests.dir/reconcile_optimality_tests.cpp.o.d"
  "reconcile_optimality_tests"
  "reconcile_optimality_tests.pdb"
  "reconcile_optimality_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconcile_optimality_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
