add_test([=[Torture.AllEnginesPassEveryAssertion]=]  /root/repo/build/tests/torture_tests [==[--gtest_filter=Torture.AllEnginesPassEveryAssertion]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Torture.AllEnginesPassEveryAssertion]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  torture_tests_TESTS Torture.AllEnginesPassEveryAssertion)
