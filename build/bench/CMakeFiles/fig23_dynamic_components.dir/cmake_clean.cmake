file(REMOVE_RECURSE
  "CMakeFiles/fig23_dynamic_components.dir/fig23_dynamic_components.cpp.o"
  "CMakeFiles/fig23_dynamic_components.dir/fig23_dynamic_components.cpp.o.d"
  "fig23_dynamic_components"
  "fig23_dynamic_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_dynamic_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
