# Empty compiler generated dependencies file for fig23_dynamic_components.
# This may be replaced when dependencies are built.
