file(REMOVE_RECURSE
  "CMakeFiles/prefetch_extension.dir/prefetch_extension.cpp.o"
  "CMakeFiles/prefetch_extension.dir/prefetch_extension.cpp.o.d"
  "prefetch_extension"
  "prefetch_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
