# Empty dependencies file for prefetch_extension.
# This may be replaced when dependencies are built.
