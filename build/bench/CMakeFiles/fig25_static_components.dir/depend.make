# Empty dependencies file for fig25_static_components.
# This may be replaced when dependencies are built.
