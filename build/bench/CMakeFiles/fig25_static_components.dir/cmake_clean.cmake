file(REMOVE_RECURSE
  "CMakeFiles/fig25_static_components.dir/fig25_static_components.cpp.o"
  "CMakeFiles/fig25_static_components.dir/fig25_static_components.cpp.o.d"
  "fig25_static_components"
  "fig25_static_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_static_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
