# Empty dependencies file for fig07_dispatch.
# This may be replaced when dependencies are built.
