file(REMOVE_RECURSE
  "CMakeFiles/fig07_dispatch.dir/fig07_dispatch.cpp.o"
  "CMakeFiles/fig07_dispatch.dir/fig07_dispatch.cpp.o.d"
  "fig07_dispatch"
  "fig07_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
