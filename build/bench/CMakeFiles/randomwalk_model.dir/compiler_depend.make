# Empty compiler generated dependencies file for randomwalk_model.
# This may be replaced when dependencies are built.
