file(REMOVE_RECURSE
  "CMakeFiles/randomwalk_model.dir/randomwalk_model.cpp.o"
  "CMakeFiles/randomwalk_model.dir/randomwalk_model.cpp.o.d"
  "randomwalk_model"
  "randomwalk_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomwalk_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
