file(REMOVE_RECURSE
  "CMakeFiles/fig26_comparison.dir/fig26_comparison.cpp.o"
  "CMakeFiles/fig26_comparison.dir/fig26_comparison.cpp.o.d"
  "fig26_comparison"
  "fig26_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
