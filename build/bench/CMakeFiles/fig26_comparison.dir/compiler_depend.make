# Empty compiler generated dependencies file for fig26_comparison.
# This may be replaced when dependencies are built.
