file(REMOVE_RECURSE
  "CMakeFiles/static_codegen_ablation.dir/static_codegen_ablation.cpp.o"
  "CMakeFiles/static_codegen_ablation.dir/static_codegen_ablation.cpp.o.d"
  "static_codegen_ablation"
  "static_codegen_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_codegen_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
