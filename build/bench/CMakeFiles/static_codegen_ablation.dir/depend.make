# Empty dependencies file for static_codegen_ablation.
# This may be replaced when dependencies are built.
