file(REMOVE_RECURSE
  "CMakeFiles/fig20_programs.dir/fig20_programs.cpp.o"
  "CMakeFiles/fig20_programs.dir/fig20_programs.cpp.o.d"
  "fig20_programs"
  "fig20_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
