# Empty dependencies file for fig20_programs.
# This may be replaced when dependencies are built.
