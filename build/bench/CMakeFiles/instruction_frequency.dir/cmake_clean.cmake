file(REMOVE_RECURSE
  "CMakeFiles/instruction_frequency.dir/instruction_frequency.cpp.o"
  "CMakeFiles/instruction_frequency.dir/instruction_frequency.cpp.o.d"
  "instruction_frequency"
  "instruction_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instruction_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
