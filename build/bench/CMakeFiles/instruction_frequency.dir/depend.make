# Empty dependencies file for instruction_frequency.
# This may be replaced when dependencies are built.
