file(REMOVE_RECURSE
  "CMakeFiles/engines_wallclock.dir/engines_wallclock.cpp.o"
  "CMakeFiles/engines_wallclock.dir/engines_wallclock.cpp.o.d"
  "engines_wallclock"
  "engines_wallclock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engines_wallclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
