# Empty compiler generated dependencies file for engines_wallclock.
# This may be replaced when dependencies are built.
