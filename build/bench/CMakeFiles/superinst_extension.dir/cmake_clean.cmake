file(REMOVE_RECURSE
  "CMakeFiles/superinst_extension.dir/superinst_extension.cpp.o"
  "CMakeFiles/superinst_extension.dir/superinst_extension.cpp.o.d"
  "superinst_extension"
  "superinst_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superinst_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
