# Empty dependencies file for superinst_extension.
# This may be replaced when dependencies are built.
