# Empty dependencies file for fig24_static_overhead.
# This may be replaced when dependencies are built.
