file(REMOVE_RECURSE
  "CMakeFiles/fig24_static_overhead.dir/fig24_static_overhead.cpp.o"
  "CMakeFiles/fig24_static_overhead.dir/fig24_static_overhead.cpp.o.d"
  "fig24_static_overhead"
  "fig24_static_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_static_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
