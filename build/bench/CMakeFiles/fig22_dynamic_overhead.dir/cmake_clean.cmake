file(REMOVE_RECURSE
  "CMakeFiles/fig22_dynamic_overhead.dir/fig22_dynamic_overhead.cpp.o"
  "CMakeFiles/fig22_dynamic_overhead.dir/fig22_dynamic_overhead.cpp.o.d"
  "fig22_dynamic_overhead"
  "fig22_dynamic_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_dynamic_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
