# Empty compiler generated dependencies file for fig22_dynamic_overhead.
# This may be replaced when dependencies are built.
