file(REMOVE_RECURSE
  "CMakeFiles/fig21_constant_k.dir/fig21_constant_k.cpp.o"
  "CMakeFiles/fig21_constant_k.dir/fig21_constant_k.cpp.o.d"
  "fig21_constant_k"
  "fig21_constant_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_constant_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
