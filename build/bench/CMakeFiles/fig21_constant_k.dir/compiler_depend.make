# Empty compiler generated dependencies file for fig21_constant_k.
# This may be replaced when dependencies are built.
