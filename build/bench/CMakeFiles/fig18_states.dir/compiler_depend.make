# Empty compiler generated dependencies file for fig18_states.
# This may be replaced when dependencies are built.
