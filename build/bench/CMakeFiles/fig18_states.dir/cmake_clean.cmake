file(REMOVE_RECURSE
  "CMakeFiles/fig18_states.dir/fig18_states.cpp.o"
  "CMakeFiles/fig18_states.dir/fig18_states.cpp.o.d"
  "fig18_states"
  "fig18_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
