file(REMOVE_RECURSE
  "CMakeFiles/twostack_extension.dir/twostack_extension.cpp.o"
  "CMakeFiles/twostack_extension.dir/twostack_extension.cpp.o.d"
  "twostack_extension"
  "twostack_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twostack_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
