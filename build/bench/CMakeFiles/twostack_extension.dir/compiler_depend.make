# Empty compiler generated dependencies file for twostack_extension.
# This may be replaced when dependencies are built.
