# Empty compiler generated dependencies file for tos_speedup.
# This may be replaced when dependencies are built.
