file(REMOVE_RECURSE
  "CMakeFiles/tos_speedup.dir/tos_speedup.cpp.o"
  "CMakeFiles/tos_speedup.dir/tos_speedup.cpp.o.d"
  "tos_speedup"
  "tos_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tos_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
