file(REMOVE_RECURSE
  "libsc_dynamic.a"
)
