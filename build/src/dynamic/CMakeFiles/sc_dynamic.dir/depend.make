# Empty dependencies file for sc_dynamic.
# This may be replaced when dependencies are built.
