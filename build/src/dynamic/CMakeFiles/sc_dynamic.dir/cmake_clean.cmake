file(REMOVE_RECURSE
  "CMakeFiles/sc_dynamic.dir/Dynamic3Engine.cpp.o"
  "CMakeFiles/sc_dynamic.dir/Dynamic3Engine.cpp.o.d"
  "CMakeFiles/sc_dynamic.dir/ModelInterpreter.cpp.o"
  "CMakeFiles/sc_dynamic.dir/ModelInterpreter.cpp.o.d"
  "libsc_dynamic.a"
  "libsc_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
