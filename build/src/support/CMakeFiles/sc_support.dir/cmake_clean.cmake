file(REMOVE_RECURSE
  "CMakeFiles/sc_support.dir/Table.cpp.o"
  "CMakeFiles/sc_support.dir/Table.cpp.o.d"
  "libsc_support.a"
  "libsc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
