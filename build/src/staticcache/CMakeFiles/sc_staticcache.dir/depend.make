# Empty dependencies file for sc_staticcache.
# This may be replaced when dependencies are built.
