file(REMOVE_RECURSE
  "libsc_staticcache.a"
)
