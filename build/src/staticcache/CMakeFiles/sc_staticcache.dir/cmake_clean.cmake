file(REMOVE_RECURSE
  "CMakeFiles/sc_staticcache.dir/StaticEngine.cpp.o"
  "CMakeFiles/sc_staticcache.dir/StaticEngine.cpp.o.d"
  "CMakeFiles/sc_staticcache.dir/StaticOptimal.cpp.o"
  "CMakeFiles/sc_staticcache.dir/StaticOptimal.cpp.o.d"
  "CMakeFiles/sc_staticcache.dir/StaticPass.cpp.o"
  "CMakeFiles/sc_staticcache.dir/StaticPass.cpp.o.d"
  "libsc_staticcache.a"
  "libsc_staticcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_staticcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
