# Empty dependencies file for sc_superinst.
# This may be replaced when dependencies are built.
