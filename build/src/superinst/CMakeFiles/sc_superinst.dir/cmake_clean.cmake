file(REMOVE_RECURSE
  "CMakeFiles/sc_superinst.dir/Superinst.cpp.o"
  "CMakeFiles/sc_superinst.dir/Superinst.cpp.o.d"
  "libsc_superinst.a"
  "libsc_superinst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_superinst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
