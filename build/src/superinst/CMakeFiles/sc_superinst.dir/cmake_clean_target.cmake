file(REMOVE_RECURSE
  "libsc_superinst.a"
)
