# CMake generated Testfile for 
# Source directory: /root/repo/src/dispatch
# Build directory: /root/repo/build/src/dispatch
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
