file(REMOVE_RECURSE
  "libsc_dispatch.a"
)
