
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dispatch/CallThreadedEngine.cpp" "src/dispatch/CMakeFiles/sc_dispatch.dir/CallThreadedEngine.cpp.o" "gcc" "src/dispatch/CMakeFiles/sc_dispatch.dir/CallThreadedEngine.cpp.o.d"
  "/root/repo/src/dispatch/Engines.cpp" "src/dispatch/CMakeFiles/sc_dispatch.dir/Engines.cpp.o" "gcc" "src/dispatch/CMakeFiles/sc_dispatch.dir/Engines.cpp.o.d"
  "/root/repo/src/dispatch/SwitchEngine.cpp" "src/dispatch/CMakeFiles/sc_dispatch.dir/SwitchEngine.cpp.o" "gcc" "src/dispatch/CMakeFiles/sc_dispatch.dir/SwitchEngine.cpp.o.d"
  "/root/repo/src/dispatch/ThreadedEngine.cpp" "src/dispatch/CMakeFiles/sc_dispatch.dir/ThreadedEngine.cpp.o" "gcc" "src/dispatch/CMakeFiles/sc_dispatch.dir/ThreadedEngine.cpp.o.d"
  "/root/repo/src/dispatch/ThreadedTosEngine.cpp" "src/dispatch/CMakeFiles/sc_dispatch.dir/ThreadedTosEngine.cpp.o" "gcc" "src/dispatch/CMakeFiles/sc_dispatch.dir/ThreadedTosEngine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/sc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
