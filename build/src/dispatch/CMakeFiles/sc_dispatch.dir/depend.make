# Empty dependencies file for sc_dispatch.
# This may be replaced when dependencies are built.
