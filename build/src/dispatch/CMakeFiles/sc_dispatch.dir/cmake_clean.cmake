file(REMOVE_RECURSE
  "CMakeFiles/sc_dispatch.dir/CallThreadedEngine.cpp.o"
  "CMakeFiles/sc_dispatch.dir/CallThreadedEngine.cpp.o.d"
  "CMakeFiles/sc_dispatch.dir/Engines.cpp.o"
  "CMakeFiles/sc_dispatch.dir/Engines.cpp.o.d"
  "CMakeFiles/sc_dispatch.dir/SwitchEngine.cpp.o"
  "CMakeFiles/sc_dispatch.dir/SwitchEngine.cpp.o.d"
  "CMakeFiles/sc_dispatch.dir/ThreadedEngine.cpp.o"
  "CMakeFiles/sc_dispatch.dir/ThreadedEngine.cpp.o.d"
  "CMakeFiles/sc_dispatch.dir/ThreadedTosEngine.cpp.o"
  "CMakeFiles/sc_dispatch.dir/ThreadedTosEngine.cpp.o.d"
  "libsc_dispatch.a"
  "libsc_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
