file(REMOVE_RECURSE
  "libsc_cache.a"
)
