
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/CacheState.cpp" "src/cache/CMakeFiles/sc_cache.dir/CacheState.cpp.o" "gcc" "src/cache/CMakeFiles/sc_cache.dir/CacheState.cpp.o.d"
  "/root/repo/src/cache/Organization.cpp" "src/cache/CMakeFiles/sc_cache.dir/Organization.cpp.o" "gcc" "src/cache/CMakeFiles/sc_cache.dir/Organization.cpp.o.d"
  "/root/repo/src/cache/Reconcile.cpp" "src/cache/CMakeFiles/sc_cache.dir/Reconcile.cpp.o" "gcc" "src/cache/CMakeFiles/sc_cache.dir/Reconcile.cpp.o.d"
  "/root/repo/src/cache/Transition.cpp" "src/cache/CMakeFiles/sc_cache.dir/Transition.cpp.o" "gcc" "src/cache/CMakeFiles/sc_cache.dir/Transition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/sc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
