file(REMOVE_RECURSE
  "CMakeFiles/sc_cache.dir/CacheState.cpp.o"
  "CMakeFiles/sc_cache.dir/CacheState.cpp.o.d"
  "CMakeFiles/sc_cache.dir/Organization.cpp.o"
  "CMakeFiles/sc_cache.dir/Organization.cpp.o.d"
  "CMakeFiles/sc_cache.dir/Reconcile.cpp.o"
  "CMakeFiles/sc_cache.dir/Reconcile.cpp.o.d"
  "CMakeFiles/sc_cache.dir/Transition.cpp.o"
  "CMakeFiles/sc_cache.dir/Transition.cpp.o.d"
  "libsc_cache.a"
  "libsc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
