# Empty compiler generated dependencies file for sc_cache.
# This may be replaced when dependencies are built.
