file(REMOVE_RECURSE
  "CMakeFiles/sc_vm.dir/Code.cpp.o"
  "CMakeFiles/sc_vm.dir/Code.cpp.o.d"
  "CMakeFiles/sc_vm.dir/Disasm.cpp.o"
  "CMakeFiles/sc_vm.dir/Disasm.cpp.o.d"
  "CMakeFiles/sc_vm.dir/Opcode.cpp.o"
  "CMakeFiles/sc_vm.dir/Opcode.cpp.o.d"
  "CMakeFiles/sc_vm.dir/RunResult.cpp.o"
  "CMakeFiles/sc_vm.dir/RunResult.cpp.o.d"
  "libsc_vm.a"
  "libsc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
