
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/Code.cpp" "src/vm/CMakeFiles/sc_vm.dir/Code.cpp.o" "gcc" "src/vm/CMakeFiles/sc_vm.dir/Code.cpp.o.d"
  "/root/repo/src/vm/Disasm.cpp" "src/vm/CMakeFiles/sc_vm.dir/Disasm.cpp.o" "gcc" "src/vm/CMakeFiles/sc_vm.dir/Disasm.cpp.o.d"
  "/root/repo/src/vm/Opcode.cpp" "src/vm/CMakeFiles/sc_vm.dir/Opcode.cpp.o" "gcc" "src/vm/CMakeFiles/sc_vm.dir/Opcode.cpp.o.d"
  "/root/repo/src/vm/RunResult.cpp" "src/vm/CMakeFiles/sc_vm.dir/RunResult.cpp.o" "gcc" "src/vm/CMakeFiles/sc_vm.dir/RunResult.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
