file(REMOVE_RECURSE
  "CMakeFiles/sc_trace.dir/Capture.cpp.o"
  "CMakeFiles/sc_trace.dir/Capture.cpp.o.d"
  "CMakeFiles/sc_trace.dir/Simulators.cpp.o"
  "CMakeFiles/sc_trace.dir/Simulators.cpp.o.d"
  "libsc_trace.a"
  "libsc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
