file(REMOVE_RECURSE
  "libsc_forth.a"
)
