# Empty compiler generated dependencies file for sc_forth.
# This may be replaced when dependencies are built.
