file(REMOVE_RECURSE
  "CMakeFiles/sc_forth.dir/Compiler.cpp.o"
  "CMakeFiles/sc_forth.dir/Compiler.cpp.o.d"
  "CMakeFiles/sc_forth.dir/Forth.cpp.o"
  "CMakeFiles/sc_forth.dir/Forth.cpp.o.d"
  "CMakeFiles/sc_forth.dir/Lexer.cpp.o"
  "CMakeFiles/sc_forth.dir/Lexer.cpp.o.d"
  "libsc_forth.a"
  "libsc_forth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_forth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
