//===-- tools/snapshot_inspect.cpp - Snapshot header dumper ---------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dumps the validated header of a snapshot written by forth_run
/// --checkpoint (or any snapshot::serialize caller): format version,
/// program identity, position, fuel, retired-progress accounting, stack
/// depths and the serialized state sizes. Validation runs the same
/// hardened readHeader the restore path uses, so a truncated or corrupted
/// file is reported with its typed rejection and exit code 1 — this tool
/// is safe to point at arbitrary bytes.
///
/// --json switches to a machine-readable document on stdout (src/metrics
/// JSON, one object per file), so service operations tooling can parse
/// checkpoint state instead of scraping the human format. Errors are
/// reported in-band: {"file":..., "error": "<typed reason>"} with exit
/// code 1, never a half-written object.
///
//===----------------------------------------------------------------------===//

#include "metrics/Json.h"
#include "snapshot/Snapshot.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

using namespace sc;

namespace {

int inspectHuman(const std::string &FileName, const snapshot::SnapshotHeader &H) {
  std::printf("%s: sc-snap v%u, %llu bytes\n", FileName.c_str(),
              H.FormatVersion, static_cast<unsigned long long>(H.TotalBytes));
  std::printf("  program identity  %016llx (version %llu)\n",
              static_cast<unsigned long long>(H.CodeIdentity),
              static_cast<unsigned long long>(H.CodeVersion));
  std::printf("  resume at pc      %u%s\n", H.MS.Pc,
              H.Resume ? " (mid-run: sentinel live)" : " (fresh entry)");
  if (H.MS.FuelRemaining == UINT64_MAX)
    std::printf("  fuel remaining    unlimited\n");
  else
    std::printf("  fuel remaining    %llu steps\n",
                static_cast<unsigned long long>(H.MS.FuelRemaining));
  std::printf("  retired           %llu steps in %llu slices\n",
              static_cast<unsigned long long>(H.MS.StepsRetired),
              static_cast<unsigned long long>(H.MS.SlicesRetired));
  std::printf("  data stack        depth %u / %u (high water %u)\n", H.DsDepth,
              H.DsCapacity, H.DsHighWater);
  std::printf("  return stack      depth %u / %u (high water %u)\n", H.RsDepth,
              H.RsCapacity, H.RsHighWater);
  std::printf("  data space        %llu bytes (%llu on the wire), HERE %llu\n",
              static_cast<unsigned long long>(H.DataSpaceBytes),
              static_cast<unsigned long long>(H.DataPrefixBytes),
              static_cast<unsigned long long>(H.Here));
  if (H.AccessibleLimit == UINT64_MAX)
    std::printf("  access limit      uncapped\n");
  else
    std::printf("  access limit      %llu bytes\n",
                static_cast<unsigned long long>(H.AccessibleLimit));
  std::printf("  output            %llu bytes\n",
              static_cast<unsigned long long>(H.OutputBytes));
  return 0;
}

char HexBuf[17];

const char *hex64(uint64_t V) {
  std::snprintf(HexBuf, sizeof(HexBuf), "%016llx",
                static_cast<unsigned long long>(V));
  return HexBuf;
}

int inspectJson(const std::string &FileName, const snapshot::SnapshotHeader &H) {
  metrics::Json O = metrics::Json::object();
  O.set("file", metrics::Json::string(FileName));
  O.set("format_version",
        metrics::Json::number(static_cast<uint64_t>(H.FormatVersion)));
  O.set("total_bytes", metrics::Json::number(H.TotalBytes));
  // The identity is a 64-bit hash; emit it as the hex string every other
  // report uses so consumers never lose bits to double conversion.
  O.set("code_identity", metrics::Json::string(hex64(H.CodeIdentity)));
  O.set("code_version", metrics::Json::number(H.CodeVersion));
  O.set("pc", metrics::Json::number(static_cast<uint64_t>(H.MS.Pc)));
  O.set("resume", metrics::Json::number(static_cast<uint64_t>(H.Resume)));
  O.set("fuel_unlimited", metrics::Json::number(static_cast<uint64_t>(
                              H.MS.FuelRemaining == UINT64_MAX)));
  if (H.MS.FuelRemaining != UINT64_MAX)
    O.set("fuel_remaining", metrics::Json::number(H.MS.FuelRemaining));
  O.set("steps_retired", metrics::Json::number(H.MS.StepsRetired));
  O.set("slices_retired", metrics::Json::number(H.MS.SlicesRetired));
  metrics::Json Ds = metrics::Json::object();
  Ds.set("depth", metrics::Json::number(static_cast<uint64_t>(H.DsDepth)));
  Ds.set("capacity",
         metrics::Json::number(static_cast<uint64_t>(H.DsCapacity)));
  Ds.set("high_water",
         metrics::Json::number(static_cast<uint64_t>(H.DsHighWater)));
  O.set("data_stack", std::move(Ds));
  metrics::Json Rs = metrics::Json::object();
  Rs.set("depth", metrics::Json::number(static_cast<uint64_t>(H.RsDepth)));
  Rs.set("capacity",
         metrics::Json::number(static_cast<uint64_t>(H.RsCapacity)));
  Rs.set("high_water",
         metrics::Json::number(static_cast<uint64_t>(H.RsHighWater)));
  O.set("return_stack", std::move(Rs));
  O.set("data_space_bytes", metrics::Json::number(H.DataSpaceBytes));
  O.set("data_prefix_bytes", metrics::Json::number(H.DataPrefixBytes));
  O.set("here", metrics::Json::number(H.Here));
  O.set("access_uncapped", metrics::Json::number(static_cast<uint64_t>(
                               H.AccessibleLimit == UINT64_MAX)));
  if (H.AccessibleLimit != UINT64_MAX)
    O.set("access_limit_bytes", metrics::Json::number(H.AccessibleLimit));
  O.set("output_bytes", metrics::Json::number(H.OutputBytes));
  std::printf("%s\n", O.dump().c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool JsonMode = false;
  std::string FileName;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0)
      JsonMode = true;
    else if (FileName.empty())
      FileName = Argv[I];
    else
      FileName.clear(), I = Argc; // two positionals: usage error
  }
  if (FileName.empty()) {
    std::fprintf(stderr, "usage: snapshot_inspect [--json] file.snap\n");
    return 2;
  }
  std::ifstream In(FileName, std::ios::binary);
  if (!In) {
    if (JsonMode) {
      metrics::Json O = metrics::Json::object();
      O.set("file", metrics::Json::string(FileName));
      O.set("error", metrics::Json::string("cannot open"));
      std::printf("%s\n", O.dump().c_str());
    } else {
      std::fprintf(stderr, "snapshot_inspect: cannot open %s\n",
                   FileName.c_str());
    }
    return 1;
  }
  const std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                                   std::istreambuf_iterator<char>());

  snapshot::SnapshotHeader H;
  const snapshot::SnapshotError Err =
      snapshot::readHeader(Bytes.data(), Bytes.size(), H);
  if (Err != snapshot::SnapshotError::None) {
    if (JsonMode) {
      metrics::Json O = metrics::Json::object();
      O.set("file", metrics::Json::string(FileName));
      O.set("error", metrics::Json::string(snapshot::snapshotErrorName(Err)));
      std::printf("%s\n", O.dump().c_str());
    } else {
      std::fprintf(stderr, "snapshot_inspect: %s: %s\n", FileName.c_str(),
                   snapshot::snapshotErrorName(Err));
    }
    return 1;
  }
  return JsonMode ? inspectJson(FileName, H) : inspectHuman(FileName, H);
}
