//===-- tools/snapshot_inspect.cpp - Snapshot header dumper ---------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dumps the validated header of a snapshot written by forth_run
/// --checkpoint (or any snapshot::serialize caller): format version,
/// program identity, position, fuel, retired-progress accounting, stack
/// depths and the serialized state sizes. Validation runs the same
/// hardened readHeader the restore path uses, so a truncated or corrupted
/// file is reported with its typed rejection and exit code 1 — this tool
/// is safe to point at arbitrary bytes.
///
//===----------------------------------------------------------------------===//

#include "snapshot/Snapshot.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

using namespace sc;

int main(int Argc, char **Argv) {
  if (Argc != 2) {
    std::fprintf(stderr, "usage: snapshot_inspect file.snap\n");
    return 2;
  }
  const std::string FileName = Argv[1];
  std::ifstream In(FileName, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "snapshot_inspect: cannot open %s\n",
                 FileName.c_str());
    return 1;
  }
  const std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                                   std::istreambuf_iterator<char>());

  snapshot::SnapshotHeader H;
  const snapshot::SnapshotError Err =
      snapshot::readHeader(Bytes.data(), Bytes.size(), H);
  if (Err != snapshot::SnapshotError::None) {
    std::fprintf(stderr, "snapshot_inspect: %s: %s\n", FileName.c_str(),
                 snapshot::snapshotErrorName(Err));
    return 1;
  }

  std::printf("%s: sc-snap v%u, %llu bytes\n", FileName.c_str(),
              H.FormatVersion, static_cast<unsigned long long>(H.TotalBytes));
  std::printf("  program identity  %016llx (version %llu)\n",
              static_cast<unsigned long long>(H.CodeIdentity),
              static_cast<unsigned long long>(H.CodeVersion));
  std::printf("  resume at pc      %u%s\n", H.MS.Pc,
              H.Resume ? " (mid-run: sentinel live)" : " (fresh entry)");
  if (H.MS.FuelRemaining == UINT64_MAX)
    std::printf("  fuel remaining    unlimited\n");
  else
    std::printf("  fuel remaining    %llu steps\n",
                static_cast<unsigned long long>(H.MS.FuelRemaining));
  std::printf("  retired           %llu steps in %llu slices\n",
              static_cast<unsigned long long>(H.MS.StepsRetired),
              static_cast<unsigned long long>(H.MS.SlicesRetired));
  std::printf("  data stack        depth %u / %u (high water %u)\n", H.DsDepth,
              H.DsCapacity, H.DsHighWater);
  std::printf("  return stack      depth %u / %u (high water %u)\n", H.RsDepth,
              H.RsCapacity, H.RsHighWater);
  std::printf("  data space        %llu bytes (%llu on the wire), HERE %llu\n",
              static_cast<unsigned long long>(H.DataSpaceBytes),
              static_cast<unsigned long long>(H.DataPrefixBytes),
              static_cast<unsigned long long>(H.Here));
  if (H.AccessibleLimit == UINT64_MAX)
    std::printf("  access limit      uncapped\n");
  else
    std::printf("  access limit      %llu bytes\n",
                static_cast<unsigned long long>(H.AccessibleLimit));
  std::printf("  output            %llu bytes\n",
              static_cast<unsigned long long>(H.OutputBytes));
  return 0;
}
