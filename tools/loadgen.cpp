//===-- tools/loadgen.cpp - Service load generator ------------------------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a stream of short jobs through the execution service and
/// reports end-to-end p50/p99 latency, throughput, and shed rate into
/// the metrics JSON pipeline (--json, same schema every bench uses).
///
/// Two transports: the default in-process mode runs clients and server
/// loops over makeLocalPair() channels (no kernel sockets, so the tool
/// measures the service, not the loopback stack); --tcp self-hosts a
/// ServiceServer on an ephemeral port and connects real sockets.
///
/// --chaos turns the run into a correctness probe: every connection is
/// wrapped in ChaosConfig::storm (both directions), the schedulers run
/// with CrashOneIn injection, and a background thread kills and rebuilds
/// shards mid-job. The tool is self-asserting either way — every job's
/// Result frame must match, field for field, a plain single-session
/// reference run of the same program, and the service counters must
/// show exactly-once admission and completion (Submitted == Completed
/// == jobs). A violation aborts with exit code 1, so CI can run this
/// binary directly (scripts/check.sh --service-smoke does).
///
//===----------------------------------------------------------------------===//

#include "forth/Forth.h"
#include "metrics/Reporter.h"
#include "prepare/PrepareCache.h"
#include "service/Client.h"
#include "service/Server.h"
#include "service/Service.h"
#include "session/VmSession.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace sc;
using namespace sc::service;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Distinct short programs so per-job results differ — a cross-wired
/// result (job A handed job B's answer) is caught, not masked.
constexpr const char *VariantSrcs[] = {
    ": main 0 25 0 do i + loop . ;",
    ": main 1 12 0 do dup + loop . ;",
    R"(variable acc : main 0 acc ! 16 0 do i i * acc @ + acc ! loop acc @ . ;)",
    ": main 40 0 do i 3 mod drop loop 42 . ;",
    ": main 7 begin dup 100 < while dup + repeat . ;",
    ": main 30 0 do i i - drop loop 9 9 * . ;",
};
constexpr unsigned NumVariants =
    sizeof(VariantSrcs) / sizeof(VariantSrcs[0]);

/// What one job's Result frame must say, taken from a plain VmSession
/// run of the variant at the same slice budget the service uses.
struct Reference {
  uint8_t Stop = 0;
  uint8_t Status = 0;
  uint64_t Steps = 0;
  uint64_t Slices = 0;
  std::string Output;
};

Reference referenceRun(const char *Src, engine::EngineId E,
                       uint64_t SliceSteps) {
  std::unique_ptr<forth::System> Sys = forth::loadOrDie(Src);
  prepare::PrepareCache Cache;
  auto PC = Cache.getOrPrepare(Sys->Prog, E);
  vm::Vm Machine = Sys->Machine;
  session::SessionPolicy Pol;
  Pol.SliceSteps = SliceSteps;
  session::VmSession S(PC, Machine, Pol);
  const session::SessionResult R = S.run(Sys->entryOf("main"));
  Reference Ref;
  Ref.Stop = static_cast<uint8_t>(R.Stop);
  Ref.Status = static_cast<uint8_t>(R.Outcome.Status);
  Ref.Steps = R.Outcome.Steps;
  Ref.Slices = R.Slices;
  Ref.Output = Machine.Out;
  return Ref;
}

struct Options {
  uint64_t Jobs = 2000;
  unsigned Tenants = 4;
  unsigned Clients = 4;
  unsigned Shards = 2;
  unsigned WorkersPerShard = 1;
  /// Jobs each client keeps in flight before draining results. > 1
  /// builds the backlog the rebalancer and the migrators feed on.
  unsigned Burst = 1;
  uint8_t Engine = 0;
  uint64_t Seed = 0x10adULL;
  bool Tcp = false;
  bool Chaos = false;
  /// Skew the whole load onto one tenant (one shard) and turn the
  /// cross-shard rebalancer on; the run fails unless it fired.
  bool Migrate = false;
  /// Host a second front end and drive live cross-process migration
  /// against it while the load runs.
  bool Peer = false;
  uint64_t MaxKills = 6;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: loadgen [--jobs N] [--tenants T] [--clients C] [--shards S]\n"
      "               [--workers W] [--burst B] [--engine E] [--seed X]\n"
      "               [--kills K] [--tcp] [--chaos] [--migrate] [--peer]\n"
      "               [--json <path>]\n");
  std::exit(2);
}

uint64_t parseNum(const char *S) {
  char *End = nullptr;
  const unsigned long long V = std::strtoull(S, &End, 0);
  if (!End || *End)
    usage();
  return V;
}

/// Hosts serveChannel() threads for in-process connections, so the
/// client-side Connector looks identical to the TCP one.
class LocalHost {
public:
  LocalHost(ServiceFrontEnd &FE, ChaosConfig Chaos) : FE(FE), Chaos(Chaos) {}
  ~LocalHost() { join(); }

  std::unique_ptr<Channel> connect() {
    auto [ClientEnd, ServerEnd] = makeLocalPair();
    std::unique_ptr<Channel> Srv = std::move(ServerEnd);
    std::unique_ptr<Channel> Cli = std::move(ClientEnd);
    std::lock_guard<std::mutex> L(Mu);
    const uint64_t N = ++Conns;
    if (Chaos.enabled()) {
      ChaosConfig Sc = Chaos;
      Sc.Seed = Chaos.Seed ^ (0x517cc1b727220a95ULL * N);
      Srv = std::make_unique<ChaosChannel>(std::move(Srv), Sc);
      ChaosConfig Cc = Chaos;
      Cc.Seed = Chaos.Seed ^ (0x2545f4914f6cdd1dULL * N);
      Cli = std::make_unique<ChaosChannel>(std::move(Cli), Cc);
    }
    Threads.emplace_back(
        [this, S = std::move(Srv)]() mutable { serveChannel(FE, *S); });
    return Cli;
  }

  /// Waits for every server loop to exit (their channels must be closed
  /// or destroyed by then — each client dropping its end does that).
  void join() {
    std::lock_guard<std::mutex> L(Mu);
    for (std::thread &T : Threads)
      if (T.joinable())
        T.join();
    Threads.clear();
  }

private:
  ServiceFrontEnd &FE;
  ChaosConfig Chaos;
  std::mutex Mu;
  uint64_t Conns = 0;
  std::vector<std::thread> Threads;
};

uint64_t percentileNs(std::vector<uint64_t> &Sorted, unsigned P) {
  if (Sorted.empty())
    return 0;
  const size_t Idx = (Sorted.size() - 1) * P / 100;
  return Sorted[Idx];
}

std::atomic<uint64_t> JobsDone{0};
std::atomic<bool> Failed{false};

void fail(const char *Fmt, uint64_t A, uint64_t B) {
  std::fprintf(stderr, "loadgen: FAIL: ");
  std::fprintf(stderr, Fmt, static_cast<unsigned long long>(A),
               static_cast<unsigned long long>(B));
  std::fprintf(stderr, "\n");
  Failed.store(true);
}

struct WorkerOut {
  std::vector<uint64_t> LatenciesNs;
  ClientStats Stats;
};

void runWorker(const Options &Opt, ServiceClient::Connector Connect,
               const std::vector<Reference> &Refs,
               std::atomic<uint64_t> &NextJob, unsigned WorkerIdx,
               WorkerOut &Out) {
  RetryPolicy Pol;
  Pol.JitterSeed = Opt.Seed ^ (0x9e3779b97f4a7c15ULL * (WorkerIdx + 1));
  if (Opt.Chaos) {
    // Under the storm most attempts need company; spend retries, not
    // failures.
    Pol.MaxAttempts = 40;
    Pol.AttemptTimeoutNs = 100'000'000;
  }
  ServiceClient Client(std::move(Connect), Pol);
  struct InFlightJob {
    uint64_t Index;
    uint64_t Start;
  };
  std::vector<InFlightJob> Pending;
  auto Drain = [&]() -> bool {
    for (const InFlightJob &P : Pending) {
      const JobTicket Ticket{"tenant-" + std::to_string(P.Index % Opt.Tenants),
                             P.Index + 1};
      Frame Resp;
      if (!Client.awaitResult(Ticket, Resp, 120'000'000'000ULL)) {
        fail("job %llu: no result within 120s", P.Index, 0);
        return false;
      }
      const Reference &Ref = Refs[P.Index % NumVariants];
      if (Resp.Stop != Ref.Stop)
        fail("job %llu: stop %llu differs from reference", P.Index, Resp.Stop);
      if (Resp.Status != Ref.Status)
        fail("job %llu: status %llu differs from reference", P.Index,
             Resp.Status);
      if (Resp.Steps != Ref.Steps)
        fail("job %llu: steps %llu differ from reference", P.Index,
             Resp.Steps);
      if (Resp.Slices != Ref.Slices)
        fail("job %llu: slices %llu differ from reference", P.Index,
             Resp.Slices);
      if (Resp.Output != Ref.Output)
        fail("job %llu: output differs from reference (%llu bytes)", P.Index,
             Resp.Output.size());
      Out.LatenciesNs.push_back(nowNs() - P.Start);
      JobsDone.fetch_add(1);
    }
    Pending.clear();
    return true;
  };
  for (;;) {
    const uint64_t I = NextJob.fetch_add(1);
    if (I >= Opt.Jobs || Failed.load())
      break;
    const JobTicket Ticket{"tenant-" + std::to_string(I % Opt.Tenants),
                           I + 1};
    const unsigned V = static_cast<unsigned>(I % NumVariants);
    const uint64_t Start = nowNs();

    // Admission loop: a Reject is the service telling us to come back,
    // not a failure — the idempotency ticket makes blind re-submission
    // safe. Give up only after a wall-clock bound (something is wedged).
    Frame Resp;
    bool Admitted = false;
    while (!Admitted && !Failed.load()) {
      if (Client.submit(Ticket, VariantSrcs[V], "main", Opt.Engine, Resp))
        Admitted = true;
      else if (nowNs() - Start > 60'000'000'000ULL) {
        fail("job %llu: submit wedged for 60s", I, 0);
        return;
      }
    }
    if (Failed.load())
      return;
    if (Resp.Type == FrameType::Error) {
      fail("job %llu: submit got error %llu", I,
           static_cast<uint64_t>(Resp.Err));
      return;
    }
    Pending.push_back({I, Start});
    if (Pending.size() >= Opt.Burst && !Drain())
      return;
  }
  if (!Drain())
    return;
  Out.Stats = Client.clientStats();
}

} // namespace

int main(int Argc, char **Argv) {
  metrics::MetricsReporter Reporter("loadgen");
  Reporter.parseArgs(Argc, Argv);

  Options Opt;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    auto Val = [&]() -> const char * {
      if (I + 1 >= Argc)
        usage();
      return Argv[++I];
    };
    if (!std::strcmp(A, "--jobs"))
      Opt.Jobs = parseNum(Val());
    else if (!std::strcmp(A, "--tenants"))
      Opt.Tenants = static_cast<unsigned>(parseNum(Val()));
    else if (!std::strcmp(A, "--clients"))
      Opt.Clients = static_cast<unsigned>(parseNum(Val()));
    else if (!std::strcmp(A, "--shards"))
      Opt.Shards = static_cast<unsigned>(parseNum(Val()));
    else if (!std::strcmp(A, "--workers"))
      Opt.WorkersPerShard = static_cast<unsigned>(parseNum(Val()));
    else if (!std::strcmp(A, "--burst"))
      Opt.Burst = static_cast<unsigned>(parseNum(Val()));
    else if (!std::strcmp(A, "--engine"))
      Opt.Engine = static_cast<uint8_t>(parseNum(Val()));
    else if (!std::strcmp(A, "--seed"))
      Opt.Seed = parseNum(Val());
    else if (!std::strcmp(A, "--kills"))
      Opt.MaxKills = parseNum(Val());
    else if (!std::strcmp(A, "--tcp"))
      Opt.Tcp = true;
    else if (!std::strcmp(A, "--chaos"))
      Opt.Chaos = true;
    else if (!std::strcmp(A, "--migrate"))
      Opt.Migrate = true;
    else if (!std::strcmp(A, "--peer"))
      Opt.Peer = true;
    else
      usage();
  }
  if (!Opt.Jobs || !Opt.Tenants || !Opt.Clients || !Opt.Shards)
    usage();
  if (Opt.Migrate)
    Opt.Tenants = 1; // the skew the rebalancer exists for
  if ((Opt.Migrate || Opt.Peer) && Opt.Burst < 8)
    Opt.Burst = 8; // a backlog, so jobs are catchable in flight
  if (!Opt.Burst)
    usage();

  ServiceConfig Cfg;
  Cfg.Shards = Opt.Shards;
  Cfg.WorkersPerShard = Opt.WorkersPerShard;
  if (Opt.Chaos) {
    Cfg.CrashOneIn = 150;
    Cfg.CrashSeed = Opt.Seed;
  }
  if (Opt.Migrate || Opt.Peer) {
    // Room for the whole burst of the one hot tenant.
    Cfg.MaxInFlightPerTenant =
        std::max<uint64_t>(Cfg.MaxInFlightPerTenant,
                           uint64_t{Opt.Clients} * Opt.Burst);
    Cfg.TenantQueueCapacity =
        std::max<uint64_t>(Cfg.TenantQueueCapacity,
                           2 * Cfg.MaxInFlightPerTenant);
  }
  if (Opt.Migrate) {
    Cfg.Rebalance = true;
    Cfg.RebalanceHighWater = 2;
    Cfg.RebalanceMinGap = 1;
    Cfg.RebalanceBatch = 8;
  }
  ServiceFrontEnd FE(Cfg);

  // --peer: a second, independent front end adopting live jobs.
  std::unique_ptr<ServiceFrontEnd> PeerFE;
  std::unique_ptr<LocalHost> PeerHost;

  std::vector<Reference> Refs;
  for (unsigned V = 0; V < NumVariants; ++V)
    Refs.push_back(referenceRun(
        VariantSrcs[V], static_cast<engine::EngineId>(Opt.Engine),
        Cfg.SliceSteps));

  const ChaosConfig Chaos =
      Opt.Chaos ? ChaosConfig::storm(Opt.Seed) : ChaosConfig{};

  if (Opt.Peer) {
    PeerFE = std::make_unique<ServiceFrontEnd>(Cfg);
    PeerHost = std::make_unique<LocalHost>(*PeerFE, Chaos);
  }

  // Transport: both modes expose only a Connector to the workers.
  std::unique_ptr<LocalHost> Host;
  std::unique_ptr<ServiceServer> Server;
  ServiceClient::Connector Connect;
  if (Opt.Tcp) {
    Server = std::make_unique<ServiceServer>(FE, 0, Chaos);
    if (!Server->port()) {
      std::fprintf(stderr, "loadgen: cannot bind a TCP listener\n");
      return 1;
    }
    const uint16_t Port = Server->port();
    auto ConnSeq = std::make_shared<std::atomic<uint64_t>>(0);
    Connect = [Port, Chaos, ConnSeq]() -> std::unique_ptr<Channel> {
      std::unique_ptr<Channel> Ch = connectTcp(Port);
      if (!Ch || !Chaos.enabled())
        return Ch;
      ChaosConfig Cc = Chaos;
      Cc.Seed = Chaos.Seed ^ (0xd6e8feb86659fd93ULL *
                              (ConnSeq->fetch_add(1) + 1));
      return std::make_unique<ChaosChannel>(std::move(Ch), Cc);
    };
  } else {
    Host = std::make_unique<LocalHost>(FE, Chaos);
    Connect = [&Host]() { return Host->connect(); };
  }

  // Chaos kill thread: takes a shard down mid-job every few milliseconds
  // until the budget is spent, round-robin so every shard gets hit.
  std::thread Killer;
  if (Opt.Chaos && Opt.MaxKills)
    Killer = std::thread([&FE, &Opt] {
      for (uint64_t K = 0; K < Opt.MaxKills; ++K) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        if (JobsDone.load() >= Opt.Jobs || Failed.load())
          break;
        FE.killShard(static_cast<unsigned>(K % Opt.Shards));
      }
    });

  std::atomic<uint64_t> NextJob{0};

  // --peer: migrator threads chase the submitters through the token
  // space and live-migrate whatever they can catch in flight. A job the
  // migrator misses (already finished) is MigrateOutcome::RanLocally —
  // correct either way; the ledger check below wants some catches.
  std::vector<std::thread> Migrators;
  if (Opt.Peer)
    for (unsigned M = 0; M < 2; ++M)
      Migrators.emplace_back([&Opt, &FE, &PeerHost, &NextJob, M] {
        RetryPolicy Pol;
        Pol.JitterSeed = Opt.Seed ^ (0x7f4a7c159e3779b9ULL * (M + 1));
        if (Opt.Chaos) {
          Pol.MaxAttempts = 40;
          Pol.AttemptTimeoutNs = 100'000'000;
        }
        ServiceClient PeerClient([&PeerHost] { return PeerHost->connect(); },
                                 Pol);
        for (uint64_t I = M; I < Opt.Jobs; I += 2) {
          if (Failed.load())
            return;
          while (NextJob.load() <= I && !Failed.load())
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          const JobTicket T{"tenant-" + std::to_string(I % Opt.Tenants),
                            I + 1};
          MigrateOutcome O = migrateJob(FE, PeerClient, T);
          // A torn migration stays escrowed; keep committing until the
          // peer serves the result or refuses definitively, then
          // complete or abandon — never both, never neither.
          while (O == MigrateOutcome::Torn && !Failed.load()) {
            Frame Result;
            if (PeerClient.commitMigration(T, Result, 30'000'000'000ULL)) {
              FE.completeMigration(T, Result);
              O = MigrateOutcome::Completed;
            } else if ((Result.Type == FrameType::Error &&
                        (Result.Err == ServiceError::UnknownMigration ||
                         Result.Err == ServiceError::Shutdown)) ||
                       Result.Type == FrameType::Reject) {
              while (!FE.abandonMigration(T))
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
              O = MigrateOutcome::Abandoned;
            }
          }
        }
      });

  std::vector<WorkerOut> Outs(Opt.Clients);
  std::vector<std::thread> Workers;
  const uint64_t WallStart = nowNs();
  for (unsigned W = 0; W < Opt.Clients; ++W)
    Workers.emplace_back(runWorker, std::cref(Opt), Connect, std::cref(Refs),
                         std::ref(NextJob), W, std::ref(Outs[W]));
  for (std::thread &T : Workers)
    T.join();
  const uint64_t WallNs = nowNs() - WallStart;
  for (std::thread &T : Migrators)
    T.join();
  if (Killer.joinable())
    Killer.join();

  FE.shutdown();
  if (Server)
    Server->stop();
  Host.reset(); // drops nothing itself; joins server loops (clients gone)
  if (PeerFE)
    PeerFE->shutdown();
  PeerHost.reset(); // migrator clients are gone; joins peer server loops

  if (Failed.load()) {
    std::fprintf(stderr, "loadgen: FAILED\n");
    return 1;
  }

  // Exactly-once, service side: every job admitted once, completed once,
  // regardless of how many Submit frames the chaos transport delivered.
  const ServiceStats S = FE.statsSnapshot();
  if (S.Submitted != Opt.Jobs)
    fail("admitted %llu jobs, expected %llu", S.Submitted, Opt.Jobs);
  if (S.Completed != Opt.Jobs)
    fail("completed %llu jobs, expected %llu", S.Completed, Opt.Jobs);
  if (Opt.Migrate && !S.Rebalanced)
    fail("--migrate: the rebalancer never fired (%llu moves)", S.Rebalanced,
         0);
  ServiceStats PS;
  if (PeerFE) {
    PS = PeerFE->statsSnapshot();
    // Every extraction resolved exactly one way: adopted by the peer or
    // abandoned back home. An unbalanced ledger is a lost (or doubled)
    // job.
    if (S.MigratedOut != PS.MigratedIn + S.MigrationsAbandoned)
      fail("--peer: migration ledger unbalanced: %llu out != %llu in"
           " + abandoned",
           S.MigratedOut, PS.MigratedIn + S.MigrationsAbandoned);
    if (!PS.MigratedIn)
      fail("--peer: the peer adopted no jobs (%llu offered)", S.MigratedOut,
           0);
  }
  if (Failed.load())
    return 1;

  std::vector<uint64_t> Lat;
  ClientStats CS;
  for (const WorkerOut &O : Outs) {
    Lat.insert(Lat.end(), O.LatenciesNs.begin(), O.LatenciesNs.end());
    CS.Calls += O.Stats.Calls;
    CS.Attempts += O.Stats.Attempts;
    CS.Retries += O.Stats.Retries;
    CS.Reconnects += O.Stats.Reconnects;
    CS.Timeouts += O.Stats.Timeouts;
    CS.Rejects += O.Stats.Rejects;
    CS.StaleReplies += O.Stats.StaleReplies;
    CS.DecodeErrors += O.Stats.DecodeErrors;
    CS.Failures += O.Stats.Failures;
  }
  std::sort(Lat.begin(), Lat.end());
  const uint64_t P50 = percentileNs(Lat, 50);
  const uint64_t P90 = percentileNs(Lat, 90);
  const uint64_t P99 = percentileNs(Lat, 99);
  const uint64_t SubmitFrames = S.Submitted + S.Duplicates + S.totalRejected();
  const double ShedRate =
      SubmitFrames ? static_cast<double>(S.totalRejected()) /
                         static_cast<double>(SubmitFrames)
                   : 0.0;
  const double JobsPerSec =
      WallNs ? static_cast<double>(Opt.Jobs) * 1e9 / static_cast<double>(WallNs)
             : 0.0;

  std::printf("loadgen: %" PRIu64 " jobs, %u tenants, %u clients, %u shards"
              " (%s%s)\n",
              Opt.Jobs, Opt.Tenants, Opt.Clients, Opt.Shards,
              Opt.Tcp ? "tcp" : "local", Opt.Chaos ? ", chaos" : "");
  std::printf("  latency     p50 %.3f ms   p90 %.3f ms   p99 %.3f ms\n",
              P50 / 1e6, P90 / 1e6, P99 / 1e6);
  std::printf("  throughput  %.0f jobs/s over %.3f s\n", JobsPerSec,
              WallNs / 1e9);
  std::printf("  shedding    %" PRIu64 " rejects / %" PRIu64
              " submit frames (%.2f%%): busy %" PRIu64 ", saturated %" PRIu64
              ", degraded %" PRIu64 ", closed %" PRIu64 "\n",
              S.totalRejected(), SubmitFrames, ShedRate * 100,
              S.RejectedBusy, S.RejectedSaturated, S.RejectedDegraded,
              S.RejectedClosed);
  std::printf("  exactly-once: %" PRIu64 " admitted, %" PRIu64
              " duplicates attached, %" PRIu64 " completed, %" PRIu64
              " shard kills, %" PRIu64 " jobs recovered, %" PRIu64
              " recycled\n",
              S.Submitted, S.Duplicates, S.Completed, S.ShardKills,
              S.JobsRecovered, S.JobsRecycled);
  std::printf("  client      %" PRIu64 " attempts, %" PRIu64 " retries, %"
              PRIu64 " reconnects, %" PRIu64 " timeouts, %" PRIu64
              " rejects honored, %" PRIu64 " stale replies dropped\n",
              CS.Attempts, CS.Retries, CS.Reconnects, CS.Timeouts, CS.Rejects,
              CS.StaleReplies);
  if (Opt.Migrate || Opt.Peer)
    std::printf("  migration   %" PRIu64 " rebalanced across shards, %" PRIu64
                " migrated out, %" PRIu64 " adopted by peer, %" PRIu64
                " abandoned\n",
                S.Rebalanced, S.MigratedOut, PS.MigratedIn,
                S.MigrationsAbandoned);

  if (Reporter.enabled()) {
    metrics::Json Conf = metrics::Json::object();
    Conf.set("jobs", metrics::Json::number(Opt.Jobs));
    Conf.set("tenants", metrics::Json::number(uint64_t{Opt.Tenants}));
    Conf.set("clients", metrics::Json::number(uint64_t{Opt.Clients}));
    Conf.set("shards", metrics::Json::number(uint64_t{Opt.Shards}));
    Conf.set("engine", metrics::Json::number(uint64_t{Opt.Engine}));
    Conf.set("transport", metrics::Json::string(Opt.Tcp ? "tcp" : "local"));
    Conf.set("chaos", metrics::Json::number(uint64_t{Opt.Chaos}));
    Reporter.addValues("config", metrics::EntryKind::Info, std::move(Conf));

    metrics::Json LatJ = metrics::Json::object();
    LatJ.set("p50_ns", metrics::Json::number(P50));
    LatJ.set("p90_ns", metrics::Json::number(P90));
    LatJ.set("p99_ns", metrics::Json::number(P99));
    LatJ.set("jobs_per_sec", metrics::Json::number(JobsPerSec));
    LatJ.set("wall_ns", metrics::Json::number(WallNs));
    Reporter.addValues("latency", metrics::EntryKind::Timing, std::move(LatJ));

    metrics::Json Shed = metrics::Json::object();
    Shed.set("shed_rate", metrics::Json::number(ShedRate));
    Shed.set("rejected_busy", metrics::Json::number(S.RejectedBusy));
    Shed.set("rejected_saturated", metrics::Json::number(S.RejectedSaturated));
    Shed.set("rejected_degraded", metrics::Json::number(S.RejectedDegraded));
    Shed.set("rejected_closed", metrics::Json::number(S.RejectedClosed));
    Shed.set("submitted", metrics::Json::number(S.Submitted));
    Shed.set("duplicates", metrics::Json::number(S.Duplicates));
    Shed.set("completed", metrics::Json::number(S.Completed));
    Shed.set("shard_kills", metrics::Json::number(S.ShardKills));
    Shed.set("jobs_recovered", metrics::Json::number(S.JobsRecovered));
    Shed.set("jobs_recycled", metrics::Json::number(S.JobsRecycled));
    Reporter.addValues("service", metrics::EntryKind::Info, std::move(Shed));

    metrics::Json Cli = metrics::Json::object();
    Cli.set("attempts", metrics::Json::number(CS.Attempts));
    Cli.set("retries", metrics::Json::number(CS.Retries));
    Cli.set("reconnects", metrics::Json::number(CS.Reconnects));
    Cli.set("timeouts", metrics::Json::number(CS.Timeouts));
    Cli.set("rejects", metrics::Json::number(CS.Rejects));
    Cli.set("stale_replies", metrics::Json::number(CS.StaleReplies));
    Cli.set("decode_errors", metrics::Json::number(CS.DecodeErrors));
    Reporter.addValues("client", metrics::EntryKind::Info, std::move(Cli));

    if (Opt.Migrate || Opt.Peer) {
      metrics::Json Mig = metrics::Json::object();
      Mig.set("rebalanced", metrics::Json::number(S.Rebalanced));
      Mig.set("migrated_out", metrics::Json::number(S.MigratedOut));
      Mig.set("peer_migrated_in", metrics::Json::number(PS.MigratedIn));
      Mig.set("migrations_abandoned",
              metrics::Json::number(S.MigrationsAbandoned));
      Reporter.addValues("migration", metrics::EntryKind::Info,
                         std::move(Mig));
    }
    if (!Reporter.write())
      return 1;
  }
  std::printf("loadgen: OK\n");
  return 0;
}
