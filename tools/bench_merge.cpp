//===-- tools/bench_merge.cpp - Roll per-bench JSON into one file ---------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// bench_merge <out.json> <bench1.json> [bench2.json ...]
///
/// Merges per-bench "sc-bench-v1" documents (one per bench/ binary,
/// written via --json) into a single "sc-bench-results-v1" roll-up:
///
///   { "schema": "sc-bench-results-v1",
///     "env":     <env of the first input>,
///     "benches": { "<bench name>": { per-bench doc sans env }, ... } }
///
/// scripts/bench.sh uses this to produce BENCH_results.json.
///
//===----------------------------------------------------------------------===//

#include "metrics/Json.h"
#include "metrics/Reporter.h"

#include <cstdio>

using namespace sc::metrics;

int main(int Argc, char **Argv) {
  if (Argc < 3) {
    std::fprintf(stderr,
                 "usage: bench_merge <out.json> <bench.json> [...]\n");
    return 2;
  }

  Json Out = Json::object();
  Out.set("schema", Json::string("sc-bench-results-v1"));
  Json Benches = Json::object();

  for (int I = 2; I < Argc; ++I) {
    Json Doc;
    std::string Err;
    if (!readJsonFile(Argv[I], Doc, &Err)) {
      std::fprintf(stderr, "bench_merge: %s\n", Err.c_str());
      return 1;
    }
    const Json *NameJ = Doc.find("bench");
    if (!NameJ || !NameJ->isString()) {
      std::fprintf(stderr, "bench_merge: %s: no \"bench\" name\n", Argv[I]);
      return 1;
    }
    std::string Name = NameJ->asString();
    if (Benches.has(Name)) {
      std::fprintf(stderr, "bench_merge: duplicate bench '%s' (%s)\n",
                   Name.c_str(), Argv[I]);
      return 1;
    }
    // Hoist the first env to the top level; drop per-bench copies.
    if (!Out.has("env")) {
      if (const Json *Env = Doc.find("env"))
        Out.set("env", *Env);
    }
    Json Entry = Json::object();
    if (const Json *Schema = Doc.find("schema"))
      Entry.set("schema", *Schema);
    if (const Json *Entries = Doc.find("entries"))
      Entry.set("entries", *Entries);
    Benches.set(Name, std::move(Entry));
  }
  Out.set("benches", std::move(Benches));

  if (!writeJsonFile(Argv[1], Out)) {
    std::fprintf(stderr, "bench_merge: cannot write %s\n", Argv[1]);
    return 1;
  }
  return 0;
}
