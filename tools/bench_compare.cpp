//===-- tools/bench_compare.cpp - Flag bench-result regressions -----------===//
//
// Part of the stackcache project: a reproduction of "Stack Caching for
// Interpreters" (M. A. Ertl, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// bench_compare [--threshold F] <baseline.json> <current.json>
///
/// Diffs two bench-result files (per-bench or merged roll-ups). "exact"
/// and "counters" entries must match bit-for-bit; "timing" entries may
/// drift within the relative threshold (default 0.25 = 25%). Entries
/// whose values carry raw "dispatches" and "guest_steps" counts (the
/// regvm_comparison bench) additionally have the derived
/// dispatches-per-guest-step ratio re-computed and asserted on both
/// sides, so a worsened per-step rate fails the comparison even when
/// both raw counts scale together. Exits 0 when no regression was
/// found, 1 on regressions, 2 on usage/IO errors. CI's perf-smoke job
/// self-checks it against perturbed roll-ups; for local before/after
/// comparisons see EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#include "metrics/Compare.h"
#include "metrics/Json.h"
#include "metrics/Reporter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace sc::metrics;

int main(int Argc, char **Argv) {
  CompareOptions Opts;
  std::string Files[2];
  int NFiles = 0;

  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--threshold") && I + 1 < Argc) {
      Opts.TimingThreshold = std::strtod(Argv[++I], nullptr);
    } else if (Argv[I][0] == '-' && Argv[I][1]) {
      NFiles = 0;
      break;
    } else if (NFiles < 2) {
      Files[NFiles++] = Argv[I];
    } else {
      NFiles = 0;
      break;
    }
  }
  if (NFiles != 2) {
    std::fprintf(
        stderr,
        "usage: bench_compare [--threshold F] <baseline.json> <current.json>\n");
    return 2;
  }

  Json Baseline, Current;
  std::string Err;
  if (!readJsonFile(Files[0], Baseline, &Err) ||
      !readJsonFile(Files[1], Current, &Err)) {
    std::fprintf(stderr, "bench_compare: %s\n", Err.c_str());
    return 2;
  }

  CompareResult Res = compareResults(Baseline, Current, Opts);
  std::string Report = Res.render();
  std::fputs(Report.c_str(), stdout);
  if (Res.regression()) {
    std::printf("bench_compare: FAIL (threshold %.0f%%)\n",
                Opts.TimingThreshold * 100);
    return 1;
  }
  std::printf("bench_compare: OK (%zu note(s), threshold %.0f%%)\n",
              Res.Issues.size(), Opts.TimingThreshold * 100);
  return 0;
}
